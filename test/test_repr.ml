(* Tests for the Q G_w Q' representation container, the metrics module, and
   regression cases for sparse/awkward layouts. *)

open La
module Blackbox = Substrate.Blackbox
module Profile = Substrate.Profile
module Layout = Geometry.Layout
module Contact = Geometry.Contact
module Csr = Sparsemat.Csr
open Sparsify

let rng = Rng.create 1618

(* A small synthetic representation: random orthogonal Q (from QR) and a
   random symmetric G_w. *)
let synthetic n =
  let q = (Qr.decomp (Mat.random rng n n)).Qr.q in
  let m = Mat.random rng n n in
  let gw = Mat.add m (Mat.transpose m) in
  Repr.make ~q:(Csr.of_dense q) ~gw:(Csr.of_dense gw) ~solves:5

let test_make_validates () =
  Alcotest.(check bool) "rejects mismatched" true
    (try
       ignore
         (Repr.make ~q:(Csr.of_dense (Mat.identity 3)) ~gw:(Csr.of_dense (Mat.identity 4)) ~solves:0);
       false
     with Invalid_argument _ -> true)

let test_apply_equals_dense () =
  let r = synthetic 12 in
  let v = Rng.gaussian_array rng 12 in
  let dense = Repr.to_dense r in
  Alcotest.(check bool) "apply = densified" true
    (Vec.approx_equal ~tol:1e-9 (Subcouple_op.apply (Repr.op r) v) (Mat.gemv dense v))

let test_columns_match_dense () =
  let r = synthetic 10 in
  let dense = Repr.to_dense r in
  let cols = Subcouple_op.columns (Repr.op r) [| 2; 7 |] in
  Alcotest.(check bool) "col 2" true (Vec.approx_equal ~tol:1e-10 cols.(0) (Mat.col dense 2));
  Alcotest.(check bool) "col 7" true (Vec.approx_equal ~tol:1e-10 cols.(1) (Mat.col dense 7))

let test_orthogonality_defect () =
  let r = synthetic 8 in
  Alcotest.(check bool) "orthogonal Q" true (Repr.orthogonality_defect r < 1e-9);
  (* A deliberately non-orthogonal Q is detected. *)
  let bad =
    Repr.make ~q:(Csr.of_dense (Mat.scale 2.0 (Mat.identity 8))) ~gw:(Csr.of_dense (Mat.identity 8)) ~solves:0
  in
  Alcotest.(check bool) "detects scaling" true (Repr.orthogonality_defect bad > 1.0)

let test_threshold_monotone () =
  let r = synthetic 16 in
  let t2 = Repr.threshold r ~target:2.0 in
  let t8 = Repr.threshold r ~target:8.0 in
  Alcotest.(check bool) "monotone nnz" true
    (Repr.nnz_gw t8 <= Repr.nnz_gw t2 && Repr.nnz_gw t2 <= Repr.nnz_gw r);
  (* target 1 leaves the matrix unchanged *)
  Alcotest.(check int) "target 1 no-op" (Repr.nnz_gw r) (Repr.nnz_gw (Repr.threshold r ~target:1.0))

let test_threshold_hits_target () =
  let r = synthetic 24 in
  let t = Repr.threshold r ~target:6.0 in
  let achieved = float_of_int (Repr.nnz_gw r) /. float_of_int (Repr.nnz_gw t) in
  Alcotest.(check bool) (Printf.sprintf "achieved %.1f" achieved) true (achieved > 4.0 && achieved < 9.0)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_error_dense_exactness () =
  let a = Mat.random rng 5 5 in
  let e = Metrics.error_dense ~exact:a ~approx:a in
  Alcotest.(check (float 1e-12)) "zero error" 0.0 e.Metrics.max_rel_error;
  Alcotest.(check (float 1e-12)) "zero frac" 0.0 e.Metrics.frac_above_10pct

let test_error_dense_known () =
  let exact = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 4.0; 5.0 |] |] in
  let approx = Mat.of_arrays [| [| 1.05; 2.0 |]; [| 4.0; 2.5 |] |] in
  let e = Metrics.error_dense ~exact ~approx in
  Alcotest.(check (float 1e-9)) "max" 0.5 e.Metrics.max_rel_error;
  (* entries off by > 10%: only (1,1) at 50%. *)
  Alcotest.(check (float 1e-9)) "frac" 0.25 e.Metrics.frac_above_10pct;
  Alcotest.(check int) "entries" 4 e.Metrics.entries

let test_error_skips_zero_exact () =
  let exact = Mat.of_arrays [| [| 0.0; 1.0 |] |] in
  let approx = Mat.of_arrays [| [| 5.0; 1.0 |] |] in
  let e = Metrics.error_dense ~exact ~approx in
  (* The zero-denominator entry is skipped, not infinite. *)
  Alcotest.(check int) "entries" 1 e.Metrics.entries;
  Alcotest.(check (float 1e-12)) "max" 0.0 e.Metrics.max_rel_error

let test_sample_indices () =
  let s = Metrics.sample_indices ~n:100 ~count:10 in
  Alcotest.(check int) "count" 10 (Array.length s);
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 100)) s;
  let s1 = Metrics.sample_indices ~n:5 ~count:50 in
  Alcotest.(check int) "clamped" 5 (Array.length s1)

let test_solve_reduction () =
  Alcotest.(check (float 1e-12)) "reduction" 4.0 (Metrics.solve_reduction ~n:100 ~solves:25)

let test_probe_estimate () =
  (* The probe estimate reflects the true relative operator error. *)
  let n = 20 in
  let m = Mat.random rng n n in
  let g = Mat.add m (Mat.transpose m) in
  let bb = Blackbox.of_dense g in
  (* Exact model: estimate ~ 0. *)
  let exact =
    Metrics.estimate_apply_error ~probes:3 ~exact:(Blackbox.op bb)
      ~approx:(Subcouple_op.of_dense g) ()
  in
  Alcotest.(check bool) "exact model" true (exact.Metrics.max_rel_residual < 1e-12);
  Alcotest.(check int) "counts solves" 3 exact.Metrics.extra_solves;
  (* Perturbed model: estimate near the spectral perturbation size. *)
  let perturbed = Mat.add g (Mat.scale (0.01 *. Mat.max_abs g) (Mat.identity n)) in
  let est =
    Metrics.estimate_apply_error ~probes:5 ~exact:(Blackbox.op bb)
      ~approx:(Subcouple_op.of_dense perturbed) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "nonzero estimate %.2e" est.Metrics.mean_rel_residual)
    true
    (est.Metrics.mean_rel_residual > 1e-4 && est.Metrics.mean_rel_residual < 0.2)

(* ------------------------------------------------------------------ *)
(* Regression: sparse and awkward layouts through the whole pipeline *)

(* The thesis's near-floating substrate keeps all couplings above ~max/500,
   so the entrywise relative error measure is meaningful (§3.7). *)
let exact_for layout =
  let solver =
    Eigsolver.Eig_solver.create ~tol:1e-9 (Profile.thesis_default ()) layout ~panels_per_side:64
  in
  Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox solver)

let test_lowrank_sparse_clustered_layout () =
  (* Two distant clusters with lots of empty squares between them: some
     squares have empty interactive regions (zero-column row bases), the
     case that once crashed split_responses. *)
  let contacts = ref [] in
  let add x0 y0 = contacts := Contact.make ~x0 ~y0 ~x1:(x0 +. 4.0) ~y1:(y0 +. 4.0) :: !contacts in
  for i = 0 to 3 do
    for j = 0 to 3 do
      add (2.0 +. (8.0 *. float_of_int i)) (2.0 +. (8.0 *. float_of_int j));
      add (98.0 +. (8.0 *. float_of_int i)) (98.0 +. (8.0 *. float_of_int j))
    done
  done;
  let layout = { Layout.size = 128.0; contacts = Array.of_list (List.rev !contacts); name = "two clusters" } in
  let g = exact_for layout in
  let repr = Lowrank.extract ~max_level:3 layout (Blackbox.of_dense g) in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f" err.Metrics.max_rel_error)
    true
    (err.Metrics.max_rel_error < 0.15)

let test_lowrank_single_contact_squares () =
  (* One contact per finest square: row bases of width <= 1, complements
     empty. *)
  let layout = Layout.regular_grid ~size:128.0 ~per_side:8 ~fill:0.4 () in
  let g = exact_for layout in
  let repr = Lowrank.extract ~max_level:3 layout (Blackbox.of_dense g) in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f" err.Metrics.max_rel_error)
    true
    (err.Metrics.max_rel_error < 0.1)

let test_wavelet_sparse_clustered_layout () =
  let contacts = ref [] in
  let add x0 y0 = contacts := Contact.make ~x0 ~y0 ~x1:(x0 +. 4.0) ~y1:(y0 +. 4.0) :: !contacts in
  for i = 0 to 3 do
    for j = 0 to 3 do
      add (2.0 +. (8.0 *. float_of_int i)) (2.0 +. (8.0 *. float_of_int j));
      add (98.0 +. (8.0 *. float_of_int i)) (98.0 +. (8.0 *. float_of_int j))
    done
  done;
  let layout = { Layout.size = 128.0; contacts = Array.of_list (List.rev !contacts); name = "two clusters" } in
  let g = exact_for layout in
  let repr = Wavelet.extract (Wavelet.create ~p:2 ~max_level:2 layout) (Blackbox.of_dense g) in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "max rel err %.3f" err.Metrics.max_rel_error)
    true
    (err.Metrics.max_rel_error < 0.1)

let test_tiny_layout_extraction () =
  (* 4x4 contacts, one per coarsest-level square: the shallowest tree the
     method supports. *)
  let layout = Layout.regular_grid ~size:128.0 ~per_side:4 ~fill:0.5 () in
  let g = exact_for layout in
  let repr = Lowrank.extract ~max_level:2 layout (Blackbox.of_dense g) in
  let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  Alcotest.(check bool)
    (Printf.sprintf "tiny max err %.4f" err.Metrics.max_rel_error)
    true
    (err.Metrics.max_rel_error < 0.01)

let () =
  Alcotest.run "repr"
    [
      ( "repr",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "apply = dense" `Quick test_apply_equals_dense;
          Alcotest.test_case "columns" `Quick test_columns_match_dense;
          Alcotest.test_case "orthogonality defect" `Quick test_orthogonality_defect;
          Alcotest.test_case "threshold monotone" `Quick test_threshold_monotone;
          Alcotest.test_case "threshold hits target" `Quick test_threshold_hits_target;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exactness" `Quick test_error_dense_exactness;
          Alcotest.test_case "known values" `Quick test_error_dense_known;
          Alcotest.test_case "skips zero denominators" `Quick test_error_skips_zero_exact;
          Alcotest.test_case "sample indices" `Quick test_sample_indices;
          Alcotest.test_case "solve reduction" `Quick test_solve_reduction;
          Alcotest.test_case "probe estimate" `Quick test_probe_estimate;
        ] );
      ( "regression",
        [
          Alcotest.test_case "low-rank: clustered layout" `Slow test_lowrank_sparse_clustered_layout;
          Alcotest.test_case "low-rank: single-contact squares" `Slow test_lowrank_single_contact_squares;
          Alcotest.test_case "wavelet: clustered layout" `Slow test_wavelet_sparse_clustered_layout;
          Alcotest.test_case "tiny layout" `Slow test_tiny_layout_extraction;
        ] );
    ]
