(* Tests for the serving layer: wire-protocol round trips (hostile input
   included), the LRU artifact cache against its byte budget, the daemon's
   request coalescing (bit-identical to direct application), EINTR-proof
   raw I/O, and degradation reporting for manifests with missing shards. *)

open La
module Blackbox = Substrate.Blackbox
module Shard = Substrate.Shard
module Csr = Sparsemat.Csr
module Op = Subcouple_op
module Artifact = Subcouple_op.Artifact
module Manifest = Artifact.Manifest
module Io_retry = Subcouple_op.Io_retry
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Stats = Serve.Stats
module Server = Serve.Server
module Client = Serve.Client
open Sparsify

let rng = Rng.create 46656

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.equal (String.sub s i k) sub || go (i + 1)) in
  go 0

let vec_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b

let batch_bits_equal a b = Array.length a = Array.length b && Array.for_all2 vec_bits_equal a b

(* A small synthetic representation (same fixture as test_op): orthogonal
   Q from QR, random symmetric G_w. *)
let synthetic n =
  let q = (Qr.decomp (Mat.random rng n n)).Qr.q in
  let m = Mat.random rng n n in
  let gw = Mat.add m (Mat.transpose m) in
  Repr.make ~q:(Csr.of_dense q) ~gw:(Csr.of_dense gw) ~solves:5

let with_temp_dir f =
  let dir = Filename.temp_file "test_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Protocol round trips *)

let degraded_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.Protocol.masked = b.Protocol.masked
    && a.Protocol.quarantined_shards = b.Protocol.quarantined_shards
    && a.Protocol.pending_shards = b.Protocol.pending_shards
  | _ -> false

let req_equal a b =
  match (a, b) with
  | Protocol.Info { artifact = x }, Protocol.Info { artifact = y } -> String.equal x y
  | ( Protocol.Apply { artifact = a1; v = v1; coalesce = c1 },
      Protocol.Apply { artifact = a2; v = v2; coalesce = c2 } ) ->
    String.equal a1 a2 && Bool.equal c1 c2 && vec_bits_equal v1 v2
  | ( Protocol.Apply_batch { artifact = a1; vs = vs1 },
      Protocol.Apply_batch { artifact = a2; vs = vs2 } ) ->
    String.equal a1 a2 && batch_bits_equal vs1 vs2
  | ( Protocol.Column { artifact = a1; index = i1; coalesce = c1 },
      Protocol.Column { artifact = a2; index = i2; coalesce = c2 } ) ->
    String.equal a1 a2 && i1 = i2 && Bool.equal c1 c2
  | ( Protocol.Threshold { artifact = a1; target = t1 },
      Protocol.Threshold { artifact = a2; target = t2 } ) ->
    String.equal a1 a2 && Int64.equal (Int64.bits_of_float t1) (Int64.bits_of_float t2)
  | Protocol.Stats, Protocol.Stats | Protocol.Shutdown, Protocol.Shutdown -> true
  | _ -> false

let resp_equal a b =
  match (a, b) with
  | ( Protocol.Vectors { vs = vs1; degraded = d1 },
      Protocol.Vectors { vs = vs2; degraded = d2 } ) ->
    batch_bits_equal vs1 vs2 && degraded_equal d1 d2
  | ( Protocol.Info_r
        { n = n1; kind = k1; source = s1; solves = sv1; storage_floats = f1; degraded = d1 },
      Protocol.Info_r
        { n = n2; kind = k2; source = s2; solves = sv2; storage_floats = f2; degraded = d2 } ) ->
    n1 = n2 && String.equal k1 k2 && String.equal s1 s2 && sv1 = sv2 && f1 = f2
    && degraded_equal d1 d2
  | ( Protocol.Threshold_r { nnz_before = b1; nnz_after = a1; storage_floats = f1 },
      Protocol.Threshold_r { nnz_before = b2; nnz_after = a2; storage_floats = f2 } ) ->
    b1 = b2 && a1 = a2 && f1 = f2
  | ( Protocol.Stats_r { table = t1; pairs = p1 },
      Protocol.Stats_r { table = t2; pairs = p2 } ) ->
    String.equal t1 t2
    && List.length p1 = List.length p2
    && List.for_all2
         (fun (na, va) (nb, vb) ->
           String.equal na nb && Int64.equal (Int64.bits_of_float va) (Int64.bits_of_float vb))
         p1 p2
  | Protocol.Shutting_down, Protocol.Shutting_down -> true
  | Protocol.Error_r a, Protocol.Error_r b -> String.equal a b
  | _ -> false

(* Every constructor, with hostile float bit patterns: NaN, infinities,
   signed zero, a subnormal — the protocol promises bit-exact transport. *)
let specials = [| Float.nan; Float.infinity; Float.neg_infinity; -0.0; 4.9e-324; 1.0 |]

let sample_requests =
  [
    Protocol.Info { artifact = "g.sca" };
    Protocol.Apply { artifact = "dir/g.sca"; v = specials; coalesce = true };
    Protocol.Apply { artifact = "g.sca"; v = [||]; coalesce = false };
    Protocol.Apply_batch { artifact = "m.scm"; vs = [| specials; [| 2.5 |]; [||] |] };
    Protocol.Apply_batch { artifact = "m.scm"; vs = [||] };
    Protocol.Column { artifact = "g.sca"; index = 17; coalesce = true };
    Protocol.Threshold { artifact = "g.sca"; target = 2.5 };
    Protocol.Stats;
    Protocol.Shutdown;
  ]

let some_degraded =
  Some { Protocol.masked = [| 3; 5; 11 |]; quarantined_shards = 2; pending_shards = 1 }

let sample_responses =
  [
    Protocol.Vectors { vs = [| specials |]; degraded = None };
    Protocol.Vectors { vs = [| [||]; specials |]; degraded = some_degraded };
    Protocol.Info_r
      {
        n = 256;
        kind = "lowrank";
        source = "substrate_extract --scenario regular";
        solves = 241;
        storage_floats = 37206;
        degraded = some_degraded;
      };
    Protocol.Threshold_r { nnz_before = 100; nnz_after = 50; storage_floats = 75 };
    Protocol.Stats_r
      { table = "counter  value\nx  1\n"; pairs = [ ("a.mean", 0.5); ("b", Float.nan) ] };
    Protocol.Shutting_down;
    Protocol.Error_r "no such artifact";
  ]

let test_request_roundtrip () =
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d" i)
        true
        (req_equal r (Protocol.decode_request (Protocol.encode_request r))))
    sample_requests

let test_response_roundtrip () =
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d" i)
        true
        (resp_equal r (Protocol.decode_response (Protocol.encode_response r))))
    sample_responses

(* Hostile payloads must raise Protocol.Error — never an allocation
   failure or an out-of-bounds crash. Truncating a valid encoding at
   every prefix length sweeps all "length field promises more than is
   there" cases. *)
let check_rejects name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": malformed payload decoded successfully")
  | exception Protocol.Error _ -> ()

let test_malformed_rejected () =
  check_rejects "empty request" (fun () -> Protocol.decode_request "");
  check_rejects "empty response" (fun () -> Protocol.decode_response "");
  check_rejects "unknown request opcode" (fun () -> Protocol.decode_request "Z");
  check_rejects "unknown response opcode" (fun () -> Protocol.decode_response "Z");
  List.iter
    (fun r ->
      let s = Protocol.encode_request r in
      for len = 0 to String.length s - 1 do
        check_rejects
          (Printf.sprintf "truncated request at %d" len)
          (fun () -> Protocol.decode_request (String.sub s 0 len))
      done;
      check_rejects "trailing garbage" (fun () -> Protocol.decode_request (s ^ "x")))
    sample_requests;
  List.iter
    (fun r ->
      let s = Protocol.encode_response r in
      for len = 0 to String.length s - 1 do
        check_rejects
          (Printf.sprintf "truncated response at %d" len)
          (fun () -> Protocol.decode_response (String.sub s 0 len))
      done;
      check_rejects "trailing garbage" (fun () -> Protocol.decode_response (s ^ "x")))
    sample_responses

let test_hostile_frame_length () =
  (* A frame header declaring 2^62 bytes must be refused before any
     allocation happens. *)
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let header = Bytes.create 8 in
      Bytes.set_int64_le header 0 (Int64.shift_left 1L 62);
      Io_retry.write_all w header 0 8;
      match Protocol.read_request r with
      | _ -> Alcotest.fail "hostile frame length accepted"
      | exception Protocol.Error msg ->
        Alcotest.(check bool) "error names the length" true (contains msg "frame"))

let test_socket_framing_roundtrip () =
  (* Requests and responses survive a real fd boundary, interleaved. *)
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (fun req -> Protocol.write_request w req) sample_requests;
      List.iter
        (fun req ->
          Alcotest.(check bool) "framed request" true (req_equal req (Protocol.read_request r)))
        sample_requests;
      List.iter (fun resp -> Protocol.write_response w resp) sample_responses;
      List.iter
        (fun resp ->
          Alcotest.(check bool) "framed response" true (resp_equal resp (Protocol.read_response r)))
        sample_responses)

(* ------------------------------------------------------------------ *)
(* The LRU cache *)

let save_synthetic dir name n =
  let r = synthetic n in
  Repr.save r ~kind:"test" ~source:name ~path:(Filename.concat dir name);
  r

let test_cache_hits_and_stale_detection () =
  with_temp_dir (fun dir ->
      let r = save_synthetic dir "a.sca" 10 in
      let stats = Stats.create () in
      let cache = Cache.create ~root:dir ~stats () in
      let e1 = Cache.get cache "a.sca" in
      Alcotest.(check int) "first get misses" 1 (Stats.counter_value stats "cache.misses");
      let e2 = Cache.get cache "a.sca" in
      Alcotest.(check int) "second get hits" 1 (Stats.counter_value stats "cache.hits");
      Alcotest.(check string) "same resident entry" e1.Cache.digest e2.Cache.digest;
      (* The cached operator answers bit-identically to the source. *)
      let v = Rng.gaussian_array (Rng.create 5) 10 in
      Alcotest.(check bool) "cached op bit-identical" true
        (vec_bits_equal (Op.apply (Repr.op r) v) (Op.apply e1.Cache.op v));
      (* Rewriting the file in place must be detected, not served stale.
         Backdating the mtime guards against same-second rewrites. *)
      let r2 = save_synthetic dir "a.sca" 12 in
      ignore r2;
      let past = Unix.time () -. 7200.0 in
      Unix.utimes (Filename.concat dir "a.sca") past past;
      let e3 = Cache.get cache "a.sca" in
      Alcotest.(check int) "rewritten file re-loaded" 12 (Op.n e3.Cache.op);
      Alcotest.(check bool) "new digest" true (not (String.equal e1.Cache.digest e3.Cache.digest)))

let test_cache_lru_eviction () =
  with_temp_dir (fun dir ->
      ignore (save_synthetic dir "a.sca" 10);
      ignore (save_synthetic dir "b.sca" 10);
      ignore (save_synthetic dir "c.sca" 10);
      (* Size one entry with a throwaway cache, then budget for two. *)
      let probe = Cache.create ~root:dir ~stats:(Stats.create ()) () in
      let entry_bytes = (Cache.get probe "a.sca").Cache.bytes in
      let stats = Stats.create () in
      let cache = Cache.create ~max_bytes:((2 * entry_bytes) + 16) ~root:dir ~stats () in
      ignore (Cache.get cache "a.sca");
      ignore (Cache.get cache "b.sca");
      Alcotest.(check int) "two fit" 0 (Stats.counter_value stats "cache.evictions");
      ignore (Cache.get cache "a.sca") (* a is now more recent than b *);
      ignore (Cache.get cache "c.sca");
      Alcotest.(check int) "third evicts" 1 (Stats.counter_value stats "cache.evictions");
      let entries, resident = Cache.resident cache in
      Alcotest.(check int) "two resident" 2 entries;
      Alcotest.(check bool) "within budget" true (resident <= Cache.max_bytes cache);
      let hits = Stats.counter_value stats "cache.hits" in
      ignore (Cache.get cache "a.sca");
      Alcotest.(check int) "a survived (recently used)" (hits + 1)
        (Stats.counter_value stats "cache.hits");
      ignore (Cache.get cache "b.sca");
      Alcotest.(check int) "b was the LRU victim" 4 (Stats.counter_value stats "cache.misses"))

let test_cache_oversized_entry_admitted () =
  with_temp_dir (fun dir ->
      ignore (save_synthetic dir "a.sca" 12);
      let stats = Stats.create () in
      (* Budget far below one entry: still served, everything else evicted. *)
      let cache = Cache.create ~max_bytes:64 ~root:dir ~stats () in
      let e = Cache.get cache "a.sca" in
      Alcotest.(check int) "served" 12 (Op.n e.Cache.op);
      let entries, _ = Cache.resident cache in
      Alcotest.(check int) "resident" 1 entries)

let test_cache_name_policy () =
  with_temp_dir (fun dir ->
      let stats = Stats.create () in
      let cache = Cache.create ~root:dir ~stats () in
      let rejects name =
        match Cache.get cache name with
        | _ -> Alcotest.fail (Printf.sprintf "name %S crossed the trust boundary" name)
        | exception Cache.Rejected _ -> ()
      in
      rejects "";
      rejects "/etc/passwd";
      rejects "../outside.sca";
      rejects "a/../../outside.sca";
      rejects (String.make (Protocol.max_name_bytes + 1) 'a'))

(* ------------------------------------------------------------------ *)
(* The daemon: coalescing is bit-identical to direct application *)

let with_server ?(jobs = 2) dir f =
  let sock = Filename.concat dir "serve.sock" in
  let srv = Server.create ~jobs ~root:dir ~listen:(`Unix sock) () in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () -> f sock srv)

let test_server_coalescing_bit_identical () =
  with_temp_dir (fun dir ->
      let r = synthetic 32 in
      Repr.save r ~kind:"test" ~path:(Filename.concat dir "g.sca");
      with_server dir (fun sock srv ->
          let op = Repr.op r in
          let clients = 6 and per = 8 in
          let vs =
            Array.init (clients * per) (fun i -> Rng.gaussian_array (Rng.create (1000 + i)) 32)
          in
          let expect = Op.apply_batch ~jobs:1 op vs in
          (* Concurrent clients, one coalescible request per vector: the
             server batches whatever arrives together; answers must not
             depend on the grouping. *)
          let results = Array.make (clients * per) [||] in
          let degraded_seen = ref false in
          let threads =
            List.init clients (fun c ->
                Thread.create
                  (fun () ->
                    Client.with_connection (`Unix sock) (fun cl ->
                        for k = 0 to per - 1 do
                          let i = (c * per) + k in
                          let y, d = Client.apply cl ~artifact:"g.sca" vs.(i) in
                          if Option.is_some d then degraded_seen := true;
                          results.(i) <- y
                        done))
                  ())
          in
          List.iter Thread.join threads;
          Alcotest.(check bool) "full artifact never degraded" false !degraded_seen;
          Alcotest.(check bool) "coalesced ≡ direct, bitwise" true (batch_bits_equal expect results);
          Client.with_connection (`Unix sock) (fun cl ->
              (* The one-shot batch path and the uncoalesced path agree too. *)
              let outs, _ = Client.apply_batch cl ~artifact:"g.sca" vs in
              Alcotest.(check bool) "batched request bitwise" true (batch_bits_equal expect outs);
              let y, _ = Client.apply ~coalesce:false cl ~artifact:"g.sca" vs.(0) in
              Alcotest.(check bool) "uncoalesced bitwise" true (vec_bits_equal expect.(0) y);
              let col, _ = Client.column cl ~artifact:"g.sca" 5 in
              Alcotest.(check bool) "served column" true
                (vec_bits_equal (Op.columns op [| 5 |]).(0) col);
              (* Errors answer the request, not the connection. *)
              (match Client.info cl ~artifact:"missing.sca" with
              | _ -> Alcotest.fail "missing artifact served"
              | exception Client.Server_error _ -> ());
              (match Client.apply cl ~artifact:"g.sca" [| 1.0 |] with
              | _ -> Alcotest.fail "wrong-length vector served"
              | exception Client.Server_error msg ->
                Alcotest.(check bool) "names the length" true (contains msg "32"));
              let i = Client.info cl ~artifact:"g.sca" in
              Alcotest.(check int) "info n" 32 i.Client.n;
              Alcotest.(check string) "info kind" "test" i.Client.kind;
              (* Stats: every coalesced request was counted, one artifact
                 loaded once. *)
              let table, pairs = Client.stats cl in
              let value name = List.assoc name pairs in
              Alcotest.(check bool) "coalesced counted" true
                (value "batch.coalesced" >= float_of_int (clients * per));
              Alcotest.(check (float 0.0)) "one cache miss" 1.0 (value "cache.misses");
              Alcotest.(check bool) "table mentions latency" true (contains table "latency_s.apply"));
          ignore
            (Stats.counter_value (Server.stats srv) "requests.apply" : int)))

let test_server_survives_killed_connection () =
  with_temp_dir (fun dir ->
      ignore (save_synthetic dir "g.sca" 16);
      with_server dir (fun sock _srv ->
          (* A client that dies mid-frame must not take the daemon down. *)
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX sock);
          let header = Bytes.create 8 in
          Bytes.set_int64_le header 0 1000L (* promise 1000 bytes, send 3 *);
          Io_retry.write_all fd header 0 8;
          Io_retry.write_all fd (Bytes.of_string "abc") 0 3;
          Unix.close fd;
          (* A malformed frame gets an error response, then the daemon
             drops the connection. *)
          let fd2 = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd2 (Unix.ADDR_UNIX sock);
          let huge = Bytes.create 8 in
          Bytes.set_int64_le huge 0 (Int64.shift_left 1L 62);
          Io_retry.write_all fd2 huge 0 8;
          (match Protocol.read_response fd2 with
          | Protocol.Error_r msg ->
            Alcotest.(check bool) "names the frame" true (contains msg "frame")
          | _ -> Alcotest.fail "expected an error response"
          | exception End_of_file -> () (* already dropped: also acceptable *));
          Unix.close fd2;
          (* The daemon still serves. *)
          Client.with_connection (`Unix sock) (fun cl ->
              Alcotest.(check int) "still serving" 16 (Client.info cl ~artifact:"g.sca").Client.n)))

(* ------------------------------------------------------------------ *)
(* EINTR: raw I/O and artifact saves keep working under a signal storm *)

let test_eintr_storm () =
  let fired = ref 0 in
  Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired));
  let tick = { Unix.it_interval = 0.0005; it_value = 0.0005 } in
  ignore (Unix.setitimer Unix.ITIMER_REAL tick : Unix.interval_timer_status);
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = 0.0 }
          : Unix.interval_timer_status);
      Sys.set_signal Sys.sigalrm Sys.Signal_default)
    (fun () ->
      (* A pipe transfer much larger than the kernel buffer: both sides
         block repeatedly, so interrupted write() and read() calls are
         exercised for real, not just simulated. *)
      let nbytes = 8 * 1024 * 1024 in
      let data = Bytes.init nbytes (fun i -> Char.chr (i land 0xff)) in
      let r, w = Unix.pipe ~cloexec:true () in
      let writer =
        Thread.create
          (fun () ->
            Io_retry.write_all w data 0 nbytes;
            Unix.close w)
          ()
      in
      let got = Bytes.create nbytes in
      Io_retry.really_read r got 0 nbytes;
      Thread.join writer;
      Unix.close r;
      Alcotest.(check bool) "pipe transfer intact" true (Bytes.equal data got);
      (* Artifact saves under the same storm: every save lands complete
         and loads back bit-identical — no torn temp files promoted. *)
      let repr = synthetic 40 in
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "g.sca" in
          for _ = 1 to 10 do
            Repr.save repr ~kind:"eintr" ~path;
            let loaded = Repr.of_artifact (Artifact.load ~path) in
            let v = Rng.gaussian_array (Rng.create 77) 40 in
            Alcotest.(check bool) "save under signals round-trips" true
              (vec_bits_equal (Op.apply (Repr.op repr) v) (Op.apply (Repr.op loaded) v))
          done);
      Alcotest.(check bool) "the storm actually fired" true (!fired > 0))

(* ------------------------------------------------------------------ *)
(* Degraded manifests: masked rows are never silent *)

let dense_g n =
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set g i j (Rng.gaussian rng)
    done;
    Mat.set g i i (Mat.get g i i +. 10.0)
  done;
  g

let test_degraded_manifest_over_serve () =
  with_temp_dir (fun dir ->
      let layout = Geometry.Layout.alternating ~size:64.0 ~per_side:4 () in
      let n = Geometry.Layout.n_contacts layout in
      let m, _ =
        Sharded.extract ~method_:`Lowrank ~shard_level:1 ~dir layout
          (Blackbox.of_dense (dense_g n))
      in
      (* Quarantine the last shard after the fact: its artifact stays on
         disk, but the manifest now says it failed. *)
      let last = Array.length m.Manifest.entries - 1 in
      let masked_contacts = m.Manifest.entries.(last).Manifest.contacts in
      let entries =
        Array.mapi
          (fun i e ->
            if i = last then { e with Manifest.status = Manifest.Quarantined "induced for test" }
            else e)
          m.Manifest.entries
      in
      let m' = { m with Manifest.entries } in
      let mpath = Shard.manifest_path dir in
      Manifest.save ~path:mpath m';
      (* The warning helper names the masked contacts. *)
      let _op, health = Op.of_manifest ~dir m' in
      (match Op.degraded_warning ~context:"column 3" health with
      | None -> Alcotest.fail "degraded composition produced no warning"
      | Some w ->
        Alcotest.(check bool) "warning counts the masked contacts" true
          (contains w (Printf.sprintf "%d masked contact" (Array.length masked_contacts)));
        Alcotest.(check bool) "warning names the request" true (contains w "column 3");
        Alcotest.(check bool) "warning names an index" true
          (contains w (string_of_int masked_contacts.(0))));
      Alcotest.(check bool) "full health warns nothing" true
        (Option.is_none (Op.degraded_warning Op.Full));
      (* Over the wire: the degraded flag rides every answer. *)
      with_server dir (fun sock _srv ->
          Client.with_connection (`Unix sock) (fun cl ->
              let name = Filename.basename mpath in
              let i = Client.info cl ~artifact:name in
              (match i.Client.degraded with
              | None -> Alcotest.fail "served info hides the degradation"
              | Some d ->
                Alcotest.(check bool) "masked ids over the wire" true
                  (d.Protocol.masked = masked_contacts);
                Alcotest.(check int) "quarantined count" 1 d.Protocol.quarantined_shards;
                Alcotest.(check int) "pending count" 0 d.Protocol.pending_shards);
              let v = Rng.gaussian_array (Rng.create 9) n in
              let y, d = Client.apply cl ~artifact:name v in
              Alcotest.(check bool) "apply carries the flag" true (Option.is_some d);
              Array.iter
                (fun c ->
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "masked row %d is zero" c)
                    0.0 y.(c))
                masked_contacts)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round trips" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trips" `Quick test_response_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "hostile frame length" `Quick test_hostile_frame_length;
          Alcotest.test_case "framing over an fd" `Quick test_socket_framing_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits and stale detection" `Quick test_cache_hits_and_stale_detection;
          Alcotest.test_case "LRU eviction at byte budget" `Quick test_cache_lru_eviction;
          Alcotest.test_case "oversized entry admitted" `Quick test_cache_oversized_entry_admitted;
          Alcotest.test_case "name trust boundary" `Quick test_cache_name_policy;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "coalescing bit-identical" `Quick test_server_coalescing_bit_identical;
          Alcotest.test_case "survives killed connections" `Quick
            test_server_survives_killed_connection;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "EINTR storm" `Quick test_eintr_storm;
          Alcotest.test_case "degraded manifest over serve" `Quick
            test_degraded_manifest_over_serve;
        ] );
    ]
