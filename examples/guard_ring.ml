(* Guard ring isolation study.

   A classic substrate-noise countermeasure: surround the sensitive contact
   with a grounded guard ring so aggressor current returns through the ring
   instead of the victim. We quantify the isolation directly from the
   conductance model: with 1 V on the aggressor and everything else
   grounded, the victim current is G(victim, aggressor).

   The ring is built from cell-sized strips, as the thesis requires for
   irregular shapes ("they need to be broken up into many small contacts",
   §5.2), and the low-rank representation is validated on this decidedly
   non-uniform layout.

     dune exec examples/guard_ring.exe *)

module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Contact = Geometry.Contact
open Sparsify

let size = 128.0

(* Aggressor bottom-left, victim top-right; optionally a grounded ring of
   strip contacts around the victim. *)
let build ~with_ring =
  let contacts = ref [] in
  let add c = contacts := c :: !contacts in
  (* Aggressor: a large contact. *)
  add (Contact.make ~x0:18.0 ~y0:18.0 ~x1:28.0 ~y1:28.0);
  (* Victim: a small analog contact (one level-4 quadtree cell). *)
  add (Contact.make ~x0:104.0 ~y0:104.0 ~x1:112.0 ~y1:112.0);
  (* Filler digital contacts that keep the rest of the chip realistic,
     aligned so each fits inside a level-4 quadtree square. *)
  for k = 0 to 6 do
    let x0 = 10.0 +. (float_of_int k *. 16.0) in
    add (Contact.make ~x0 ~y0:58.0 ~x1:(x0 +. 6.0) ~y1:64.0)
  done;
  let ring = ref [] in
  if with_ring then begin
    (* A ring of 8-unit strips around the victim (cells of the level-4
       quadtree, 8 units each). *)
    (* Strips aligned to 8-unit quadtree cells so each fits in one
       finest-level square. *)
    let strips =
      [
        (* bottom and top runs *)
        (96.0, 96.0, 104.0, 100.0); (104.0, 96.0, 112.0, 100.0); (112.0, 96.0, 120.0, 100.0);
        (96.0, 116.0, 104.0, 120.0); (104.0, 116.0, 112.0, 120.0); (112.0, 116.0, 120.0, 120.0);
        (* left and right runs *)
        (96.0, 100.0, 100.0, 104.0); (96.0, 104.0, 100.0, 112.0); (96.0, 112.0, 100.0, 116.0);
        (116.0, 100.0, 120.0, 104.0); (116.0, 104.0, 120.0, 112.0); (116.0, 112.0, 120.0, 116.0);
      ]
    in
    List.iter
      (fun (x0, y0, x1, y1) ->
        ring := List.length !contacts :: !ring;
        add (Contact.make ~x0 ~y0 ~x1 ~y1))
      strips
  end;
  let contacts = Array.of_list (List.rev !contacts) in
  ({ Layout.size; contacts; name = (if with_ring then "with guard ring" else "no guard ring") }, List.rev !ring)

let victim_current layout =
  let profile = Profile.thesis_default () in
  let solver = Eigsolver.Eig_solver.create profile layout ~panels_per_side:64 in
  let bb = Eigsolver.Eig_solver.blackbox solver in
  let n = Layout.n_contacts layout in
  let v = Array.make n 0.0 in
  v.(0) <- 1.0;
  (* aggressor *)
  let currents = Blackbox.apply bb v in
  (currents.(1), bb)

let () =
  let bare, _ = build ~with_ring:false in
  let ringed, ring_ids = build ~with_ring:true in
  Printf.printf "%s" (Layout.render ~width:48 ringed);
  let i_bare, _ = victim_current bare in
  let i_ringed, bb = victim_current ringed in
  Printf.printf "\nvictim current from a 1 V aggressor (all other contacts grounded):\n";
  Printf.printf "  without guard ring: %.5f\n" (Float.abs i_bare);
  Printf.printf "  with grounded ring: %.5f\n" (Float.abs i_ringed);
  Printf.printf "  isolation improvement: %.1fx (%d ring strips)\n"
    (Float.abs i_bare /. Float.abs i_ringed)
    (List.length ring_ids);
  (* Validate the sparsified model on the ring layout: the coupling entry it
     predicts must match the black box. *)
  Blackbox.reset_count bb;
  let repr = Lowrank.extract ringed bb in
  let n = Layout.n_contacts ringed in
  let v = Array.make n 0.0 in
  v.(0) <- 1.0;
  let model = (Subcouple_op.apply (Repr.op repr) v).(1) in
  Printf.printf "\nsparsified model reproduces the ringed coupling: %.5f vs %.5f (%.2f%% off),\n"
    (Float.abs model) (Float.abs i_ringed)
    (100.0 *. Float.abs ((model -. i_ringed) /. i_ringed));
  Printf.printf "using %d solves for %d contact pieces.\n" repr.Repr.solves n;

  (* Compound contacts (thesis §5.2): tie the twelve ring strips into ONE
     electrical node through the grouping layer — the extraction above is
     reused untouched. With the 3-node electrical model we can answer a
     question the piece-level G makes awkward: how much isolation does the
     ring lose if it is left floating instead of grounded? *)
  let module Grouping = Substrate.Grouping in
  let group_of =
    Array.init n (fun piece ->
        if piece = 0 then 0 (* aggressor *)
        else if piece = 1 then 1 (* victim *)
        else if List.mem piece ring_ids then 2 (* the ring, as one node *)
        else 3 (* all fillers lumped as one grounded digital node *))
  in
  let grouping = Grouping.of_group_ids group_of in
  let apply_elec = Grouping.lift grouping (Subcouple_op.apply (Repr.op repr)) in
  let g_elec =
    La.Mat.init 4 4 (fun i j ->
        let e = Array.make 4 0.0 in
        e.(j) <- 1.0;
        (apply_elec e).(i))
  in
  let g_va = La.Mat.get g_elec 1 0 in
  let g_vr = La.Mat.get g_elec 1 2 in
  let g_ra = La.Mat.get g_elec 2 0 in
  let g_rr = La.Mat.get g_elec 2 2 in
  (* Floating ring: zero net ring current fixes its voltage. *)
  let v_ring = -.g_ra /. g_rr in
  let i_floating = g_va +. (g_vr *. v_ring) in
  Printf.printf "\ncompound-contact analysis (ring as one electrical node):\n";
  Printf.printf "  ring grounded: victim current %.5f\n" (Float.abs g_va);
  Printf.printf "  ring floating: ring rises to %.3f V, victim current %.5f\n" v_ring
    (Float.abs i_floating);
  Printf.printf "  a floating ring forfeits %.0f%% of the grounded ring's benefit.\n"
    (100.0 *. (Float.abs i_floating -. Float.abs g_va) /. Float.abs g_va)
