(* Guard ring isolation study.

   A classic substrate-noise countermeasure: surround the sensitive contact
   with a grounded guard ring so aggressor current returns through the ring
   instead of the victim. We quantify the isolation directly from the
   conductance model: with 1 V on the aggressor and everything else
   grounded, the victim current is G(victim, aggressor).

   The ring is built from cell-sized strips, as the thesis requires for
   irregular shapes ("they need to be broken up into many small contacts",
   §5.2), and the low-rank representation is validated on this decidedly
   non-uniform layout.

     dune exec examples/guard_ring.exe *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Contact = Geometry.Contact
open Sparsify

(* The ringed floorplan ships as the "guard-ring-heavy" scenario:
   aggressor first, victim second, digital fillers, then the twelve ring
   strips. The strips are recovered geometrically — they are the contacts
   inside the ring's bounding box [96,120]^2 other than the 8 x 8 victim
   itself — and the no-ring control layout is the same floorplan with
   those strips dropped. *)
let ring_strip c =
  c.Contact.x0 >= 96.0 && c.Contact.x1 <= 120.0 && c.Contact.y0 >= 96.0
  && c.Contact.y1 <= 120.0
  && Contact.area c < 60.0

let split_ring scenario =
  let ringed = Scenario.layout scenario in
  let ring_ids =
    Array.to_list (Array.mapi (fun i c -> (i, c)) ringed.Layout.contacts)
    |> List.filter (fun (_, c) -> ring_strip c)
    |> List.map fst
  in
  let bare_contacts =
    Array.of_list
      (List.filter (fun c -> not (ring_strip c)) (Array.to_list ringed.Layout.contacts))
  in
  (ringed, { ringed with Layout.contacts = bare_contacts; name = "no guard ring" }, ring_ids)

let victim_current scenario layout =
  let bb = Scenario.blackbox scenario layout in
  let n = Layout.n_contacts layout in
  let v = Array.make n 0.0 in
  v.(0) <- 1.0;
  (* aggressor *)
  let currents = Blackbox.apply bb v in
  (currents.(1), bb)

let () =
  let scenario = Scenario.load "guard-ring-heavy" in
  let ringed, bare, ring_ids = split_ring scenario in
  Printf.printf "%s" (Layout.render ~width:48 ringed);
  let i_bare, _ = victim_current scenario bare in
  let i_ringed, bb = victim_current scenario ringed in
  Printf.printf "\nvictim current from a 1 V aggressor (all other contacts grounded):\n";
  Printf.printf "  without guard ring: %.5f\n" (Float.abs i_bare);
  Printf.printf "  with grounded ring: %.5f\n" (Float.abs i_ringed);
  Printf.printf "  isolation improvement: %.1fx (%d ring strips)\n"
    (Float.abs i_bare /. Float.abs i_ringed)
    (List.length ring_ids);
  (* Validate the sparsified model on the ring layout: the coupling entry it
     predicts must match the black box. *)
  Blackbox.reset_count bb;
  let repr = Lowrank.extract ringed bb in
  let n = Layout.n_contacts ringed in
  let v = Array.make n 0.0 in
  v.(0) <- 1.0;
  let model = (Subcouple_op.apply (Repr.op repr) v).(1) in
  Printf.printf "\nsparsified model reproduces the ringed coupling: %.5f vs %.5f (%.2f%% off),\n"
    (Float.abs model) (Float.abs i_ringed)
    (100.0 *. Float.abs ((model -. i_ringed) /. i_ringed));
  Printf.printf "using %d solves for %d contact pieces.\n" repr.Repr.solves n;

  (* Compound contacts (thesis §5.2): tie the twelve ring strips into ONE
     electrical node through the grouping layer — the extraction above is
     reused untouched. With the 3-node electrical model we can answer a
     question the piece-level G makes awkward: how much isolation does the
     ring lose if it is left floating instead of grounded? *)
  let module Grouping = Substrate.Grouping in
  let group_of =
    Array.init n (fun piece ->
        if piece = 0 then 0 (* aggressor *)
        else if piece = 1 then 1 (* victim *)
        else if List.mem piece ring_ids then 2 (* the ring, as one node *)
        else 3 (* all fillers lumped as one grounded digital node *))
  in
  let grouping = Grouping.of_group_ids group_of in
  let apply_elec = Grouping.lift grouping (Subcouple_op.apply (Repr.op repr)) in
  let g_elec =
    La.Mat.init 4 4 (fun i j ->
        let e = Array.make 4 0.0 in
        e.(j) <- 1.0;
        (apply_elec e).(i))
  in
  let g_va = La.Mat.get g_elec 1 0 in
  let g_vr = La.Mat.get g_elec 1 2 in
  let g_ra = La.Mat.get g_elec 2 0 in
  let g_rr = La.Mat.get g_elec 2 2 in
  (* Floating ring: zero net ring current fixes its voltage. *)
  let v_ring = -.g_ra /. g_rr in
  let i_floating = g_va +. (g_vr *. v_ring) in
  Printf.printf "\ncompound-contact analysis (ring as one electrical node):\n";
  Printf.printf "  ring grounded: victim current %.5f\n" (Float.abs g_va);
  Printf.printf "  ring floating: ring rises to %.3f V, victim current %.5f\n" v_ring
    (Float.abs i_floating);
  Printf.printf "  a floating ring forfeits %.0f%% of the grounded ring's benefit.\n"
    (100.0 *. (Float.abs i_floating -. Float.abs g_va) /. Float.abs g_va)
