(* Mixed-signal noise coupling: the scenario that motivates the thesis
   (§1.1): "Switching noise from the digital block injects current into the
   substrate, which can then affect the sensitive circuitry of the analog
   block."

   The left two thirds of the chip carry a dense digital block; a few
   analog contacts sit on the right. We extract a sparsified coupling model
   once and then evaluate many switching patterns against it — the use case
   where a sparse, cheap-to-apply G pays off inside a circuit simulator.

     dune exec examples/mixed_signal.exe *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Contact = Geometry.Contact
open Sparsify

(* The floorplan ships with the "epi" scenario: a checkerboard digital
   block on the left and a column of larger analog contacts on the right.
   The two blocks are recovered geometrically — the analog contacts are
   the big ones (5 x 5 vs the digital 4 x 4). *)
let classify layout =
  let idx pred =
    layout.Layout.contacts
    |> Array.to_seq
    |> Seq.mapi (fun i c -> (i, c))
    |> Seq.filter (fun (_, c) -> pred (Contact.area c))
    |> Seq.map fst |> Array.of_seq
  in
  (idx (fun a -> a <= 20.0), idx (fun a -> a > 20.0))

let () =
  let scenario = Scenario.load "epi" in
  let layout = Scenario.layout scenario in
  let digital, analog = classify layout in
  let n = Layout.n_contacts layout in
  Printf.printf "mixed-signal chip (%s process): %d digital + %d analog contacts\n"
    scenario.Scenario.name (Array.length digital) (Array.length analog);
  print_string (Layout.render ~width:48 layout);

  let blackbox = Scenario.blackbox scenario layout in

  (* Extract once. *)
  let repr = Repr.threshold (Lowrank.extract layout blackbox) ~target:6.0 in
  let extraction_solves = repr.Repr.solves in
  Printf.printf "\nmodel extracted with %d solves (%.1fx fewer than naive)\n" extraction_solves
    (Metrics.solve_reduction ~n ~solves:extraction_solves);

  (* Evaluate 100 random switching patterns of the digital block against the
     sparse model; each would otherwise cost a full substrate solve. *)
  let rng = La.Rng.create 42 in
  let apply_repr = Subcouple_op.apply (Repr.op repr) in
  let worst = Array.make (Array.length analog) 0.0 in
  let check_pattern = 17 in
  let checked = ref [||] in
  for p = 0 to 99 do
    let v = Array.make n 0.0 in
    Array.iter (fun d -> if La.Rng.float rng < 0.5 then v.(d) <- 1.0) digital;
    let currents = apply_repr v in
    Array.iteri
      (fun k a -> worst.(k) <- Float.max worst.(k) (Float.abs currents.(a)))
      analog;
    if p = check_pattern then begin
      (* Spot-check one pattern against the exact solver. *)
      let exact = Blackbox.apply blackbox v in
      checked := Array.map (fun a -> (currents.(a), exact.(a))) analog
    end
  done;
  Printf.printf "\nworst-case injected noise current per analog contact over 100 patterns:\n";
  Array.iteri (fun k w -> Printf.printf "  analog[%d]: %.4f\n" k w) worst;
  Printf.printf "\nspot check (pattern %d), model vs exact solver:\n" check_pattern;
  Array.iteri
    (fun k (m, e) -> Printf.printf "  analog[%d]: %.5f vs %.5f (%.2f%% off)\n" k m e (100.0 *. Float.abs ((m -. e) /. e)))
    !checked;
  Printf.printf "\nsolves spent: %d extraction + 1 spot check; naive would need %d + 100.\n"
    extraction_solves n
