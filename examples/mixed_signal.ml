(* Mixed-signal noise coupling: the scenario that motivates the thesis
   (§1.1): "Switching noise from the digital block injects current into the
   substrate, which can then affect the sensitive circuitry of the analog
   block."

   The left two thirds of the chip carry a dense digital block; a few
   analog contacts sit on the right. We extract a sparsified coupling model
   once and then evaluate many switching patterns against it — the use case
   where a sparse, cheap-to-apply G pays off inside a circuit simulator.

     dune exec examples/mixed_signal.exe *)

module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Contact = Geometry.Contact
open Sparsify

let build_layout () =
  let size = 128.0 in
  let per_side = 16 in
  let cell = size /. float_of_int per_side in
  let contacts = ref [] in
  (* Digital block: dense small contacts on the left 2/3. *)
  for j = 0 to per_side - 1 do
    for i = 0 to (2 * per_side / 3) - 1 do
      let x0 = (float_of_int i +. 0.3) *. cell and y0 = (float_of_int j +. 0.3) *. cell in
      contacts := Contact.make ~x0 ~y0 ~x1:(x0 +. (0.4 *. cell)) ~y1:(y0 +. (0.4 *. cell)) :: !contacts
    done
  done;
  let digital = List.length !contacts in
  (* Analog block: a handful of larger, well-spaced contacts on the right. *)
  for j = 0 to (per_side / 4) - 1 do
    for i = 0 to 1 do
      let bx = float_of_int ((2 * per_side / 3) + 1 + (2 * i)) and by = float_of_int ((4 * j) + 1) in
      let x0 = (bx +. 0.2) *. cell and y0 = (by +. 0.2) *. cell in
      contacts := Contact.make ~x0 ~y0 ~x1:(x0 +. (0.6 *. cell)) ~y1:(y0 +. (0.6 *. cell)) :: !contacts
    done
  done;
  let contacts = Array.of_list (List.rev !contacts) in
  ( { Layout.size; contacts; name = "mixed-signal chip" },
    Array.init digital Fun.id,
    Array.init (Array.length contacts - digital) (fun k -> digital + k) )

let () =
  let layout, digital, analog = build_layout () in
  let n = Layout.n_contacts layout in
  Printf.printf "mixed-signal chip: %d digital + %d analog contacts\n" (Array.length digital)
    (Array.length analog);
  print_string (Layout.render ~width:48 layout);

  let profile = Profile.thesis_default () in
  let solver = Eigsolver.Eig_solver.create profile layout ~panels_per_side:64 in
  let blackbox = Eigsolver.Eig_solver.blackbox solver in

  (* Extract once. *)
  let repr = Repr.threshold (Lowrank.extract layout blackbox) ~target:6.0 in
  let extraction_solves = repr.Repr.solves in
  Printf.printf "\nmodel extracted with %d solves (%.1fx fewer than naive)\n" extraction_solves
    (Metrics.solve_reduction ~n ~solves:extraction_solves);

  (* Evaluate 100 random switching patterns of the digital block against the
     sparse model; each would otherwise cost a full substrate solve. *)
  let rng = La.Rng.create 42 in
  let apply_repr = Subcouple_op.apply (Repr.op repr) in
  let worst = Array.make (Array.length analog) 0.0 in
  let check_pattern = 17 in
  let checked = ref [||] in
  for p = 0 to 99 do
    let v = Array.make n 0.0 in
    Array.iter (fun d -> if La.Rng.float rng < 0.5 then v.(d) <- 1.0) digital;
    let currents = apply_repr v in
    Array.iteri
      (fun k a -> worst.(k) <- Float.max worst.(k) (Float.abs currents.(a)))
      analog;
    if p = check_pattern then begin
      (* Spot-check one pattern against the exact solver. *)
      let exact = Blackbox.apply blackbox v in
      checked := Array.map (fun a -> (currents.(a), exact.(a))) analog
    end
  done;
  Printf.printf "\nworst-case injected noise current per analog contact over 100 patterns:\n";
  Array.iteri (fun k w -> Printf.printf "  analog[%d]: %.4f\n" k w) worst;
  Printf.printf "\nspot check (pattern %d), model vs exact solver:\n" check_pattern;
  Array.iteri
    (fun k (m, e) -> Printf.printf "  analog[%d]: %.5f vs %.5f (%.2f%% off)\n" k m e (100.0 *. Float.abs ((m -. e) /. e)))
    !checked;
  Printf.printf "\nsolves spent: %d extraction + 1 spot check; naive would need %d + 100.\n"
    extraction_solves n
