(* Substrate-aware circuit simulation — the end use the thesis targets
   (§1.1, §5.2: "use the tool to efficiently simulate the substrate in the
   context of a large circuit simulation").

   Each contact is tied to its driver through a series conductance g_i
   (driver strength); the substrate enforces I = G v. Nodal analysis at the
   contacts gives

       (G + diag(g)) v = diag(g) u(t)

   which we solve per time step by conjugate gradients whose operator
   applies the *sparsified* representation — three sparse matvecs instead of
   a dense n^2 product or a fresh substrate solve. The digital block clocks
   a checkerboard pattern; we watch the ground bounce it induces on a quiet
   analog contact.

     dune exec examples/circuit_sim.exe *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Sparsify

let () =
  let scenario = Scenario.load "regular" in
  let layout = Scenario.layout scenario in
  let n = Layout.n_contacts layout in
  let victim = n - 1 in
  let blackbox = Scenario.blackbox scenario layout in

  (* Extract the substrate model once. *)
  let repr = Repr.threshold (Lowrank.extract layout blackbox) ~target:6.0 in
  Printf.printf "substrate model: %d solves, G_w sparsity %.1f\n" repr.Repr.solves
    (Repr.sparsity_gw repr);

  (* Driver conductances: strong digital drivers everywhere except the
     weakly tied analog victim. *)
  let g_driver = Array.init n (fun i -> if i = victim then 0.5 else 20.0) in
  let apply_g = Subcouple_op.apply (Repr.op repr) in
  let system v =
    let substrate = apply_g v in
    Array.mapi (fun i vi -> substrate.(i) +. (g_driver.(i) *. vi)) v
  in
  (* Time-step a two-phase clock on the digital block. *)
  let steps = 16 in
  Printf.printf "\n%5s %18s %18s %12s\n" "step" "victim bounce (V)" "reference (V)" "CG iters";
  let total_iters = ref 0 in
  let worst_dev = ref 0.0 in
  for step = 0 to steps - 1 do
    let phase = step mod 2 in
    let u =
      Array.init n (fun i ->
          if i = victim then 0.0
          else if (i + (i / 16) + phase) mod 2 = 0 then 1.0
          else 0.0)
    in
    let rhs = Array.mapi (fun i x -> g_driver.(i) *. x) u in
    let result = La.Krylov.cg ~apply:system ~tol:1e-10 rhs in
    total_iters := !total_iters + result.La.Krylov.iterations;
    (* Reference solution through the exact black box, for validation:
       solve the same system with the true substrate operator. *)
    let exact_system v =
      let substrate = Blackbox.apply blackbox v in
      Array.mapi (fun i vi -> substrate.(i) +. (g_driver.(i) *. vi)) v
    in
    let reference = La.Krylov.cg ~apply:exact_system ~tol:1e-10 rhs in
    let v_model = result.La.Krylov.x.(victim) and v_exact = reference.La.Krylov.x.(victim) in
    worst_dev := Float.max !worst_dev (Float.abs (v_model -. v_exact));
    if step < 4 || step = steps - 1 then
      Printf.printf "%5d %18.6f %18.6f %12d\n" step v_model v_exact result.La.Krylov.iterations
  done;
  Printf.printf "\nworst model-vs-exact victim deviation over %d steps: %.2e V\n" steps !worst_dev;
  Printf.printf "average CG iterations per step with the sparse operator: %.1f\n"
    (float_of_int !total_iters /. float_of_int steps);
  Printf.printf
    "\nEach step costs ~%d sparse applies of %d nonzeros instead of a dense %dx%d product\n"
    (!total_iters / steps) (Repr.nnz_gw repr) n n;
  Printf.printf "or a fresh substrate solve through the scenario's %s solver.\n"
    (Scenario.solver_name scenario.Scenario.solver)
