(* Scaling study: the complexity claims of the thesis.

   The low-rank extraction should use a near-constant number of black-box
   solves per quadtree level — O(log n) total, against n for naive
   extraction — and produce a representation with O(n log n) nonzeros
   (thesis §3.5.1, §4.4). This example sweeps the contact count and prints
   both trends.

     dune exec examples/scaling.exe *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Sparsify

let () =
  let base = Scenario.load "regular" in
  Printf.printf "%6s %8s %10s %10s %12s %14s\n" "n" "solves" "reduction" "nnz(G_w)" "nnz/n" "G_w sparsity";
  List.iter
    (fun (per_side, panels) ->
      (* Scenario surgery: the same registry problem at each sweep size. *)
      let s = Scenario.with_panels (Scenario.with_per_side base per_side) panels in
      let layout = Scenario.layout s in
      let n = Layout.n_contacts layout in
      let bb = Scenario.blackbox s layout in
      let repr = Repr.threshold (Lowrank.extract layout bb) ~target:6.0 in
      Printf.printf "%6d %8d %10.1f %10d %12.1f %14.1f\n%!" n repr.Repr.solves
        (Metrics.solve_reduction ~n ~solves:repr.Repr.solves)
        (Repr.nnz_gw repr)
        (float_of_int (Repr.nnz_gw repr) /. float_of_int n)
        (Repr.sparsity_gw repr))
    [ (8, 32); (16, 64); (24, 128); (32, 128) ];
  Printf.printf "\nsolves grow like log n (flat per level), nnz/n like log n: the thesis's\n";
  Printf.printf "O(log n) extraction and O(n log n) representation claims.\n"
