(* Quickstart: extract a sparsified substrate coupling model.

   Loads the "regular" scenario from the registry — the thesis's standard
   layered substrate under a 16 x 16 contact grid, with its eigenfunction
   solver hint — runs the low-rank extraction, and applies the resulting
   sparse representation. Any .scn file works in place of the name:
   substrate stack, contact placement and solver all come from the
   scenario.

     dune exec examples/quickstart.exe *)

module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
open Sparsify

let () =
  (* 1. The problem: substrate stack + contacts + solver, as data. *)
  let scenario = Scenario.load "regular" in
  let layout = Scenario.layout scenario in
  let n = Layout.n_contacts layout in
  Printf.printf "scenario: %s — %s\n" scenario.Scenario.name scenario.Scenario.description;
  Printf.printf "layout: %s (%d contacts)\n" layout.Layout.name n;

  (* 2. The black-box substrate solver: contact voltages -> contact
     currents. The scenario's solver hint picks the eigenfunction (DCT)
     solver here; any solver with this signature works. *)
  let blackbox = Scenario.blackbox scenario layout in

  (* 3. Extract the sparsified representation G ~ Q G_w Q' with the
     low-rank method (thesis Chapter 4). *)
  let repr = Lowrank.extract layout blackbox in
  Printf.printf "extracted with %d black-box solves (naive method needs %d: %.1fx reduction)\n"
    repr.Repr.solves n
    (Metrics.solve_reduction ~n ~solves:repr.Repr.solves);
  Printf.printf "G_w sparsity factor: %.1f; Q sparsity factor: %.1f\n" (Repr.sparsity_gw repr)
    (Repr.sparsity_q repr);

  (* 4. Trade accuracy for more sparsity by thresholding. *)
  let sparse = Repr.threshold repr ~target:6.0 in
  Printf.printf "after 6x thresholding: G_w sparsity %.1f (%d nonzeros for %d entries)\n"
    (Repr.sparsity_gw sparse) (Repr.nnz_gw sparse) (n * n);

  (* 5. Apply the model: currents drawn when the left half of the chip
     switches to 1 V. *)
  let v =
    Array.init n (fun i ->
        let cx, _ = Geometry.Contact.centroid layout.Layout.contacts.(i) in
        if cx < 64.0 then 1.0 else 0.0)
  in
  let currents_model = Subcouple_op.apply (Repr.op sparse) v in
  let currents_exact = Blackbox.apply blackbox v in
  let err =
    La.Vec.norm2 (La.Vec.sub currents_model currents_exact) /. La.Vec.norm2 currents_exact
  in
  Printf.printf "model vs exact currents for a half-chip switching pattern: %.2e relative error\n" err;
  Printf.printf "current into a quiet right-half contact: %.4f (model) vs %.4f (exact)\n"
    currents_model.(n - 1) currents_exact.(n - 1)
