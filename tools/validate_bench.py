#!/usr/bin/env python3
"""Validate bench --json snapshots and gate regressions against a baseline.

Two modes:

  validate_bench.py CURRENT.json
      Schema validation only: required metadata, section shapes, kernel
      invariants (bit_identical must be true everywhere; gated kernel
      rows must show the candidate beating its baseline).

  validate_bench.py CURRENT.json --baseline BENCH_PR6.json [--tolerance 0.15]
      Schema validation plus regression comparison: per-experiment
      wall-clock must not exceed the committed baseline by more than the
      tolerance (default 15%). Experiments present only on one side are
      reported but not fatal (the set of experiments is allowed to grow).

Exit status is 0 when everything passes, 1 otherwise. Uses only the
standard library.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# (field, type) pairs every snapshot must carry at top level.
REQUIRED_METADATA = [
    ("schema_version", int),
    ("git_rev", str),
    ("platform", str),
    ("domains_recommended", int),
    ("full", bool),
    ("jobs", int),
]

REQUIRED_SECTIONS = {
    "experiments": [("id", str), ("description", str), ("wall_s", float), ("solves", int)],
    "parallel_extraction": [
        ("layout", str),
        ("n", int),
        ("jobs", int),
        ("seq_s", float),
        ("par_s", float),
        ("speedup", float),
        ("bitwise_identical", bool),
    ],
    "apply_throughput": [
        ("operator", str),
        ("n", int),
        ("storage_floats", int),
        ("s_per_matvec", float),
        ("matvecs_per_s", float),
    ],
    "trace": [],
    "kernels": [
        ("name", str),
        ("n", int),
        ("baseline", str),
        ("baseline_s", float),
        ("candidate", str),
        ("candidate_s", float),
        ("speedup", float),
        ("bit_identical", bool),
        ("gated", bool),
    ],
}

# Sections newer than the committed baseline snapshot: validated with the
# same row shapes when present, but their absence is not an error (the
# baseline predates them and must keep validating).
OPTIONAL_SECTIONS = {
    "shard": [
        ("layout", str),
        ("n", int),
        ("level", int),
        ("shards", int),
        ("fresh_s", float),
        ("resume_s", float),
        ("total_solves", int),
        ("resume_live_solves", int),
        ("bitwise_identical", bool),
    ],
    "scenario_matrix": [
        ("scenario", str),
        ("solver", str),
        ("n", int),
        ("solves", int),
        ("wall_s", float),
        ("probe_digest", str),
    ],
    "serve": [
        ("mode", str),
        ("jobs", int),
        ("clients", int),
        ("requests", int),
        ("wall_s", float),
        ("matvecs_per_s", float),
        ("mean_batch", float),
        ("bit_identical", bool),
    ],
}


def typecheck(value, expected):
    # ints serialize as valid floats; accept them where a float is expected.
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_schema(doc, path):
    errors = []
    if not isinstance(doc, dict):
        # A fresh bench history is "[]"; anything non-object cannot carry
        # the schema, so fail with one clear message instead of a traceback.
        return [f"{path}: snapshot is {type(doc).__name__}, want a JSON object"]
    for field, expected in REQUIRED_METADATA:
        if field not in doc:
            errors.append(f"{path}: missing metadata field '{field}'")
        elif not typecheck(doc[field], expected):
            errors.append(f"{path}: metadata field '{field}' has type "
                          f"{type(doc[field]).__name__}, want {expected.__name__}")
    if doc.get("schema_version") not in (None, SCHEMA_VERSION):
        errors.append(f"{path}: schema_version {doc['schema_version']} "
                      f"unsupported (validator knows {SCHEMA_VERSION})")
    def check_section(section, fields, required):
        rows = doc.get(section)
        if rows is None:
            if required:
                errors.append(f"{path}: missing section '{section}'")
            return
        if not isinstance(rows, list):
            errors.append(f"{path}: section '{section}' is not an array")
            return
        for i, row in enumerate(rows):
            for field, expected in fields:
                if field not in row:
                    errors.append(f"{path}: {section}[{i}] missing '{field}'")
                elif not typecheck(row[field], expected):
                    errors.append(f"{path}: {section}[{i}].{field} has type "
                                  f"{type(row[field]).__name__}, want {expected.__name__}")

    for section, fields in REQUIRED_SECTIONS.items():
        check_section(section, fields, required=True)
    for section, fields in OPTIONAL_SECTIONS.items():
        check_section(section, fields, required=False)
    return errors


def validate_invariants(doc, path):
    """Per-snapshot gates, independent of any baseline."""
    errors = []
    for i, row in enumerate(doc.get("kernels", [])):
        label = f"{path}: kernels[{i}] ({row.get('name', '?')})"
        if row.get("bit_identical") is not True:
            errors.append(f"{label}: candidate kernel is not bit-identical")
        if row.get("gated") and not row.get("speedup", 0) > 1.0:
            errors.append(f"{label}: gated kernel does not beat its baseline "
                          f"(speedup {row.get('speedup')})")
    for i, row in enumerate(doc.get("parallel_extraction", [])):
        if row.get("bitwise_identical") is not True:
            errors.append(f"{path}: parallel_extraction[{i}] is not bitwise identical")
    for i, row in enumerate(doc.get("serve", [])):
        label = f"{path}: serve[{i}] ({row.get('mode', '?')}, jobs {row.get('jobs', '?')})"
        if row.get("bit_identical") is not True:
            errors.append(f"{label}: served matvecs are not bit-identical to the "
                          f"direct apply_batch reference")
    return errors


def compare_wall_clock(current, baseline, tolerance):
    """Wall-clock is machine-bound, so regressions are only fatal when both
    snapshots come from the same platform triple; across platforms the
    comparison is reported but advisory."""
    errors, notes = [], []
    base = {r["id"]: r for r in baseline.get("experiments", [])}
    cur = {r["id"]: r for r in current.get("experiments", [])}
    same_platform = current.get("platform") == baseline.get("platform")
    if not same_platform:
        notes.append(f"note: platform differs (current '{current.get('platform')}' vs "
                     f"baseline '{baseline.get('platform')}'); wall-clock comparison is advisory")
    for exp_id, row in sorted(cur.items()):
        if exp_id not in base:
            notes.append(f"note: experiment '{exp_id}' has no baseline entry; skipped")
            continue
        # Schema validation reports missing fields; don't crash on them here.
        base_s, cur_s = base[exp_id].get("wall_s", 0), row.get("wall_s", 0)
        if base_s <= 0:
            notes.append(f"note: experiment '{exp_id}' baseline wall-clock is 0; skipped")
            continue
        ratio = cur_s / base_s
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            if same_platform:
                errors.append(f"experiment '{exp_id}' regressed {ratio:.2f}x over baseline "
                              f"({cur_s:.3f}s vs {base_s:.3f}s, tolerance {tolerance:.0%})")
                verdict = "REGRESSED"
            else:
                verdict = "slower (advisory: platform differs)"
        notes.append(f"  {exp_id:<10} baseline {base_s:8.3f}s  current {cur_s:8.3f}s  "
                     f"{ratio:5.2f}x  {verdict}")
    for exp_id in sorted(set(base) - set(cur)):
        notes.append(f"note: baseline experiment '{exp_id}' not in current run")
    return errors, notes


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh), []
    except (OSError, json.JSONDecodeError) as exc:
        return None, [f"{path}: cannot load: {exc}"]


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current", help="bench --json snapshot to validate")
    ap.add_argument("--baseline", help="committed snapshot to compare wall-clock against")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional wall-clock regression (default 0.15)")
    args = ap.parse_args()

    doc, errors = load(args.current)
    if doc is not None:
        errors += validate_schema(doc, args.current)
        if isinstance(doc, dict):
            errors += validate_invariants(doc, args.current)

    if args.baseline and isinstance(doc, dict):
        if not os.path.exists(args.baseline):
            print(f"note: no baseline yet ({args.baseline} does not exist); "
                  "nothing to compare against")
        else:
            base, load_errors = load(args.baseline)
            errors += load_errors
            # A bench history starts life as "[]"; an empty history (or an
            # empty object) is "no baseline yet", not a schema violation. A
            # non-empty history array compares against its newest snapshot.
            if isinstance(base, list):
                base = base[-1] if base else None
                if base is None:
                    print(f"note: no baseline yet ({args.baseline} is an empty history)")
            elif base == {}:
                base = None
                print(f"note: no baseline yet ({args.baseline} is empty)")
            if base is not None:
                errors += validate_schema(base, args.baseline)
                cmp_errors, notes = compare_wall_clock(doc, base, args.tolerance)
                errors += cmp_errors
                for note in notes:
                    print(note)

    if errors:
        for err in errors:
            print(f"ERROR: {err}", file=sys.stderr)
        print(f"validate_bench: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("validate_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
