#!/usr/bin/env python3
"""Schema check for Chrome trace_event JSON written by --trace.

Validates the structural contract the exporters promise (stdlib only, no
third-party deps):

  * top level: {"traceEvents": [...]} with a list value;
  * every event: name (non-empty str), cat, ph in {"X", "C"}, numeric
    ts >= 0, int pid/tid, args a dict;
  * "X" (complete span) events: numeric dur >= 0 and an int args.depth >= 0;
  * "C" (counter/distribution sample) events: a numeric args.value.

Usage: validate_trace.py FILE [--require-span NAME]...
Exits non-zero with a message on the first violation; with --require-span,
also fails unless a span with that exact name is present (CI uses this to
assert the pool/Krylov/blackbox/extraction phases were actually covered).
"""

import argparse
import json
import sys


def fail(msg):
    sys.exit(f"validate_trace: {msg}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument(
        "--require-span",
        action="append",
        default=[],
        help="fail unless a ph=X event with this exact name exists",
    )
    ap.add_argument(
        "--min-events", type=int, default=1, help="fail if fewer events than this"
    )
    args = ap.parse_args()

    try:
        with open(args.file, "rb") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.file}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be a list")
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, found {len(events)}")

    span_names = set()
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
            if key not in ev:
                fail(f"{where}: missing {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: name must be a non-empty string")
        if ev["ph"] not in ("X", "C"):
            fail(f"{where}: ph must be 'X' or 'C', got {ev['ph']!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"{where}: ts must be a non-negative number")
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            fail(f"{where}: pid and tid must be integers")
        if not isinstance(ev["args"], dict):
            fail(f"{where}: args must be an object")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"{where}: X event needs a non-negative numeric dur")
            depth = ev["args"].get("depth")
            if not isinstance(depth, int) or depth < 0:
                fail(f"{where}: X event needs a non-negative integer args.depth")
            span_names.add(ev["name"])
        else:
            if not isinstance(ev["args"].get("value"), (int, float)):
                fail(f"{where}: C event needs a numeric args.value")

    for name in args.require_span:
        if name not in span_names:
            fail(
                f"required span {name!r} not found "
                f"(spans present: {', '.join(sorted(span_names)) or 'none'})"
            )

    print(
        f"validate_trace: {args.file} OK "
        f"({len(events)} events, {len(span_names)} distinct spans)"
    )


if __name__ == "__main__":
    main()
