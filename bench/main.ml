(* Reproduction harness: regenerates every table and figure of the thesis's
   evaluation (Tables 2.1, 2.2, 3.1, 4.1, 4.2, 4.3; Figures 3-6..3-10, 4-1,
   4-3, 4-8..4-11) plus the ablations called out in DESIGN.md.

   Run everything:          dune exec bench/main.exe
   One experiment:          dune exec bench/main.exe -- --only t3.1
   Paper-scale sizes:       dune exec bench/main.exe -- --full
   List experiments:        dune exec bench/main.exe -- --list

   Absolute numbers differ from the thesis (our substrate solvers are
   reimplementations, not the authors' testbed); the shapes — who wins, by
   roughly what factor, where the methods break — are the reproduction
   target. EXPERIMENTS.md records paper-vs-measured side by side. *)

module Profile = Substrate.Profile
module Blackbox = Substrate.Blackbox
module Layout = Geometry.Layout
module Quadtree = Geometry.Quadtree
module Mat = La.Mat
module Vec = La.Vec
open Sparsify

let section title =
  Printf.printf "\n==== %s ====\n\n%!" title

let rng = La.Rng.create 987654321

(* ------------------------------------------------------------------ *)
(* Shared setup — posed through the scenario registry, the same problem
   definitions the CLIs resolve, so the harness and the tools can never
   drift apart on what "regular" or "large" means. *)

let registry name =
  match Scenario.find name with
  | Some s -> s
  | None -> invalid_arg ("bench: unknown registry scenario " ^ name)

(* A registry layout at a bench-specific size: [with_per_side]/[with_seed]
   call the geometry generators with exactly the legacy arguments, so
   these layouts are bit-identical to the direct [Layout.*] calls the
   harness used to make. *)
let scn_layout ?per_side ?seed name =
  let s = registry name in
  let s = match per_side with Some n -> Scenario.with_per_side s n | None -> s in
  let s = match seed with Some v -> Scenario.with_seed s v | None -> s in
  Scenario.layout s

(* The thesis's standard substrate (§3.7): 128 x 128 x 40, conductivities
   1 / 100 / 0.1, grounded backplane emulating a floating one. *)
let profile = (registry "thesis-default").Scenario.substrate.Scenario.profile

(* Build an eigenfunction black box for a layout. *)
let eig_blackbox ?(panels = 64) ?(tol = 1e-8) layout =
  let solver = Eigsolver.Eig_solver.create ~tol profile layout ~panels_per_side:panels in
  Eigsolver.Eig_solver.blackbox solver

(* Cache exact conductance matrices per (layout name, panels); extraction by
   the naive n-solve method is the most expensive part of the harness. *)
let g_cache : (string, Mat.t) Hashtbl.t = Hashtbl.create 8

let exact_g ?(panels = 64) layout =
  (* Key on name, panel count and a digest of the full coordinate list, so
     same-named layouts with different contact positions (e.g. jitter
     sweeps) don't collide. An MD5 over the printed coordinates is
     collision-free in practice, unlike the old float-accumulator hash,
     which could alias distinct geometries through rounding. *)
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map
               (fun (c : Geometry.Contact.t) ->
                 Printf.sprintf "%.17g,%.17g,%.17g,%.17g" c.Geometry.Contact.x0 c.Geometry.Contact.y0
                   c.Geometry.Contact.x1 c.Geometry.Contact.y1)
               (Array.to_list layout.Layout.contacts))))
  in
  let key = Printf.sprintf "%s/%d/%s" layout.Layout.name panels digest in
  match Hashtbl.find_opt g_cache key with
  | Some g -> g
  | None ->
    Printf.printf "  [extracting exact G for %s: %d naive solves]\n%!" layout.Layout.name
      (Layout.n_contacts layout);
    let g = Blackbox.extract_dense (eig_blackbox ~panels layout) in
    Hashtbl.replace g_cache key g;
    g

type method_result = {
  label : string;
  sparsity : float;
  sparsity_q : float;
  max_rel_err : float;
  frac_above : float;
  thr_sparsity : float;
  thr_frac_above : float;
  thr_max_rel_err : float;
  solves : int;
  n : int;
}

let evaluate_repr ~label ~g_exact (repr : Repr.t) =
  let approx = Repr.to_dense repr in
  let err = Metrics.error_dense ~exact:g_exact ~approx in
  let thr = Repr.threshold repr ~target:6.0 in
  let err_thr = Metrics.error_dense ~exact:g_exact ~approx:(Repr.to_dense thr) in
  {
    label;
    sparsity = Repr.sparsity_gw repr;
    sparsity_q = Repr.sparsity_q repr;
    max_rel_err = err.Metrics.max_rel_error;
    frac_above = err.Metrics.frac_above_10pct;
    thr_sparsity = Repr.sparsity_gw thr;
    thr_frac_above = err_thr.Metrics.frac_above_10pct;
    thr_max_rel_err = err_thr.Metrics.max_rel_error;
    solves = repr.Repr.solves;
    n = repr.Repr.n;
  }

let run_wavelet ?max_level ~g_exact layout =
  let bb = Blackbox.of_dense g_exact in
  let basis = Wavelet.create ~p:2 ?max_level layout in
  evaluate_repr ~label:"wavelet" ~g_exact (Wavelet.extract basis bb)

let run_lowrank ?max_level ~g_exact layout =
  let bb = Blackbox.of_dense g_exact in
  evaluate_repr ~label:"low-rank" ~g_exact (Lowrank.extract ?max_level layout bb)

(* ------------------------------------------------------------------ *)
(* Table 2.1: preconditioner effectiveness *)

(* An FD profile whose layer boundaries fall on grid planes (the thesis's
   grids resolve the thin top layer; h = 4 here). Defined as .scn text and
   parsed through the same config path the CLI uses, so every bench run
   also exercises the scenario parser end to end. *)
let fd_resolved_scn =
  {|(scenario
  (name bench-fd-resolved)
  (description "FD stack with layer boundaries on grid planes (h = 4)")
  (substrate
    (size 128)
    (layers
      (layer (name top) (thickness 4) (conductivity 1))
      (layer (name bulk) (thickness 24) (conductivity 100))
      (layer (name chuck) (thickness 4) (conductivity 0.1)))
    (backplane grounded))
  (contacts (generator regular (per-side 8) (seed 7) (fill 0.5)))
  (solver fd (grid 32 8)))
|}

let fd_profile_resolved =
  (Scenario.of_string ~file:"<bench:fd-resolved>" fd_resolved_scn).Scenario.substrate
    .Scenario.profile

let bench_table_2_1 ~full:_ () =
  section "Table 2.1 — preconditioner effectiveness (avg PCG iterations/solve)";
  let fd_profile = fd_profile_resolved in
  let layout = scn_layout ~per_side:8 "regular" in
  let area = Fdsolver.Fd_solver.area_fraction layout in
  let run precond =
    let s = Fdsolver.Fd_solver.create ~precond fd_profile layout ~nx:32 ~nz:8 in
    let bb = Fdsolver.Fd_solver.blackbox s in
    let n = Layout.n_contacts layout in
    for k = 0 to 19 do
      let u = Array.make n 0.0 in
      u.(k mod n) <- 1.0;
      if k >= n then u.((k * 7) mod n) <- -1.0;
      ignore (Blackbox.apply bb u)
    done;
    La.Krylov.average_iterations (Fdsolver.Fd_solver.stats s)
  in
  Printf.printf "  %-28s %s\n" "Preconditioner" "Average # iterations";
  Printf.printf "  %-28s %.1f   (paper: 22.2)\n" "Dirichlet (p=1)" (run (Fdsolver.Fd_solver.Fast_poisson 1.0));
  Printf.printf "  %-28s %.1f   (paper: 7.9)\n" "Neumann (p=0)" (run (Fdsolver.Fd_solver.Fast_poisson 0.0));
  Printf.printf "  %-28s %.1f   (paper: 6.8)\n"
    (Printf.sprintf "area-weighted (p=%.2f)" area)
    (run (Fdsolver.Fd_solver.Fast_poisson area));
  Printf.printf "  %-28s %.1f   (paper: 'hundreds' unpreconditioned, ICCG poor)\n" "incomplete Cholesky"
    (run Fdsolver.Fd_solver.Ic0);
  Printf.printf "  %-28s %.1f   (paper §2.2.2: 'may be very useful'; ours: decent, not competitive)\n"
    "multigrid V-cycle" (run Fdsolver.Fd_solver.Multigrid);
  Printf.printf "  %-28s %.1f\n" "none" (run Fdsolver.Fd_solver.No_preconditioner);
  (* The eigenfunction solver's fast-inverse preconditioner (§2.3.1): the
     thesis tried the zero-padded full-surface inverse and found it "not
     promising"; iterations drop slightly but each costs two extra DCTs. *)
  let eig_avg precond =
    let s = Eigsolver.Eig_solver.create ~precond fd_profile layout ~panels_per_side:64 in
    for k = 0 to 9 do
      let u = Array.make (Layout.n_contacts layout) 0.0 in
      u.(k * 6 mod Layout.n_contacts layout) <- 1.0;
      ignore (Eigsolver.Eig_solver.solve s u)
    done;
    La.Krylov.average_iterations (Eigsolver.Eig_solver.stats s)
  in
  Printf.printf "\n  Eigenfunction solver (§2.3.1 'fast-solver preconditioner?'):\n";
  Printf.printf "  %-28s %.1f\n" "plain CG" (eig_avg Eigsolver.Eig_solver.No_preconditioner);
  Printf.printf "  %-28s %.1f   (each iteration costs ~2x: a wash, as the thesis found)\n"
    "zero-padded fast inverse" (eig_avg Eigsolver.Eig_solver.Fast_inverse)

(* ------------------------------------------------------------------ *)
(* Table 2.2: FD vs eigenfunction solve speed (bechamel timings) *)

let bechamel_time_per_run test =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ]) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let acc = ref nan in
  Hashtbl.iter
    (fun _ v ->
      match Analyze.OLS.estimates v with Some [ t ] -> acc := t | _ -> ())
    results;
  !acc /. 1e9 (* ns -> s *)

let bench_table_2_2 ~full () =
  section "Table 2.2 — solve speed: finite difference vs eigenfunction";
  let fd_profile = fd_profile_resolved in
  let layout = scn_layout ~per_side:8 "regular" in
  let n = Layout.n_contacts layout in
  let nx = if full then 64 else 32 in
  let nz = nx / 4 in
  let area = Fdsolver.Fd_solver.area_fraction layout in
  let fd = Fdsolver.Fd_solver.create ~precond:(Fdsolver.Fd_solver.Fast_poisson area) fd_profile layout ~nx ~nz in
  let eig = Eigsolver.Eig_solver.create ~tol:1e-9 fd_profile layout ~panels_per_side:64 in
  let u = Array.make n 0.0 in
  u.(0) <- 1.0;
  u.(n / 2) <- -1.0;
  let fd_time =
    bechamel_time_per_run (Bechamel.Test.make ~name:"fd" (Bechamel.Staged.stage (fun () -> ignore (Fdsolver.Fd_solver.solve fd u))))
  in
  let eig_time =
    bechamel_time_per_run (Bechamel.Test.make ~name:"eig" (Bechamel.Staged.stage (fun () -> ignore (Eigsolver.Eig_solver.solve eig u))))
  in
  let fd_iters = La.Krylov.average_iterations (Fdsolver.Fd_solver.stats fd) in
  let eig_iters = La.Krylov.average_iterations (Eigsolver.Eig_solver.stats eig) in
  Printf.printf "  %-18s %-16s %s\n" "" "Iterations/solve" "Time per solve (s)";
  Printf.printf "  %-18s %-16.1f %-8.4f  (paper: 7.0 iters, 3.8 s)\n" "finite difference" fd_iters fd_time;
  Printf.printf "  %-18s %-16.1f %-8.4f  (paper: 6.0 iters, 0.4 s)\n" "eigenfunction" eig_iters eig_time;
  Printf.printf "  speedup: %.1fx (paper: ~10x)\n" (fd_time /. eig_time)

(* ------------------------------------------------------------------ *)
(* Table 3.1: wavelet sparsity and accuracy on Examples 1a, 1b, 2, 3 *)

let bench_table_3_1 ~full () =
  section "Table 3.1 — wavelet sparsification: sparsity and accuracy";
  let per_side = if full then 32 else 16 in
  let panels = if full then 128 else 64 in
  let max_level = if full then 3 else 2 in
  let ex1a = scn_layout ~per_side "regular" in
  let ex2 = scn_layout ~per_side "irregular" in
  let ex3 = scn_layout ~per_side "alternating" in
  let header () =
    Printf.printf "  %-34s %5s | %8s %9s | %8s %9s | %6s\n" "Example" "n" "spars." "max err"
      "thr sp." ">10% err" "solves"
  in
  let row name (r : method_result) paper =
    Printf.printf "  %-34s %5d | %8.1f %8.2f%% | %8.1f %8.2f%% | %6d   (paper: %s)\n" name r.n r.sparsity
      (100.0 *. r.max_rel_err) r.thr_sparsity (100.0 *. r.thr_frac_above) r.solves paper
  in
  header ();
  let g1 = exact_g ~panels ex1a in
  row "1a regular grid (eigenfunction)" (run_wavelet ~max_level ~g_exact:g1 ex1a) "sp 2.5, 0.2%; thr 15.3, 0.1%";
  (* Example 1b: the same layout solved with the finite-difference solver,
     with a truly floating backplane as the thesis does for its FD runs
     (§3.7: "using no backplane contact helped achieve this"). *)
  (let fd_profile =
     (Scenario.of_string ~file:"<bench:fd-floating-1b>"
        {|(scenario
  (name bench-fd-floating-1b)
  (description "truly floating backplane for the thesis's FD runs (3.7)")
  (substrate
    (size 128)
    (layers
      (layer (name top) (thickness 4) (conductivity 1))
      (layer (name bulk) (thickness 28) (conductivity 100)))
    (backplane floating))
  (contacts (generator regular (per-side 16) (seed 7) (fill 0.5)))
  (solver fd (grid 64 16)))
|})
       .Scenario.substrate.Scenario.profile
   in
   (* 64^2 x 16 is the largest FD grid that keeps the 442-solve extraction
      under a couple of minutes in pure OCaml; the paper ran 4M-node grids. *)
   let nx = 64 in
   let fd =
     Fdsolver.Fd_solver.create
       ~precond:(Fdsolver.Fd_solver.Fast_poisson (Fdsolver.Fd_solver.area_fraction ex1a))
       ~tol:1e-7 fd_profile ex1a ~nx ~nz:(nx / 4)
   in
   Printf.printf "  [extracting exact G for 1b via FD: %d solves]\n%!" (Layout.n_contacts ex1a);
   let g1b = Blackbox.extract_dense (Fdsolver.Fd_solver.blackbox fd) in
   row "1b regular grid (finite diff.)" (run_wavelet ~max_level ~g_exact:g1b ex1a) "sp 2.5, 0.2%; thr 15.4, 5.2%");
  let g2 = exact_g ~panels ex2 in
  row "2  irregular placement" (run_wavelet ~g_exact:g2 ex2) "sp 3.5, 0.2%; thr 20.6, 1.1%";
  let g3 = exact_g ~panels ex3 in
  row "3  alternating sizes" (run_wavelet ~max_level ~g_exact:g3 ex3) "sp 2.5, 47%; thr 15.3, 80%";
  Printf.printf "\n  Shape check: examples 1-2 accurate, example 3 (mixed contact sizes)\n";
  Printf.printf "  breaks the wavelet method — motivating Chapter 4.\n"

(* ------------------------------------------------------------------ *)
(* Figures 3-6..3-8, 4-8, 4-10: contact layouts *)

let bench_fig_layouts ~full:_ () =
  section "Figures 3-6, 3-7, 3-8, 4-8, 4-10 — contact layouts (ASCII)";
  let show l = print_string (Layout.render ~width:56 l) in
  show (scn_layout ~per_side:16 "regular");
  show (scn_layout ~per_side:16 "irregular");
  show (scn_layout ~per_side:16 "alternating");
  show (scn_layout ~per_side:16 "mixed");
  show (scn_layout ~per_side:32 ~seed:11 "large")

(* ------------------------------------------------------------------ *)
(* Figures 3-9 / 3-10: spy plots of the wavelet G_ws and thresholded G_wt *)

let bench_fig_3_9_10 ~full () =
  section "Figures 3-9 / 3-10 — spy plots of wavelet G_ws and thresholded G_wt (Example 2)";
  let per_side = if full then 32 else 16 in
  let panels = if full then 128 else 64 in
  let ex2 = scn_layout ~per_side "irregular" in
  let g = exact_g ~panels ex2 in
  let repr = Wavelet.extract (Wavelet.create ~p:2 ex2) (Blackbox.of_dense g) in
  Printf.printf "G_ws (unthresholded):\n";
  Sparsemat.Spy.print ~width:56 repr.Repr.gw;
  let thr = Repr.threshold repr ~target:6.0 in
  Printf.printf "\nG_wt (thresholded ~6x):\n";
  Sparsemat.Spy.print ~width:56 thr.Repr.gw

(* ------------------------------------------------------------------ *)
(* Figure 4-1 and eqs. (4.2)-(4.5): the two-square intuition example *)

let bench_fig_4_1 ~full:_ () =
  section "Figure 4-1 / eqs. (4.2)-(4.5) — why SVD beats moment-balancing";
  let layout, s_idx, d_idx = Layout.two_square_example ~size:64.0 () in
  let profile64 = Profile.thesis_default ~size:64.0 () in
  let solver = Eigsolver.Eig_solver.create ~tol:1e-10 profile64 layout ~panels_per_side:64 in
  let g = Blackbox.extract_dense (Eigsolver.Eig_solver.blackbox solver) in
  let gds = Mat.select g ~row_idx:d_idx ~col_idx:s_idx in
  Printf.printf "  G_ds (currents at contacts 3-6 from voltages at 1-2):\n%s\n"
    (Fmt.str "%a" Mat.pp gds);
  (* The area-balanced (wavelet, p=0) vector: areas are 1 : 2.25. *)
  let balanced = Vec.normalize [| 2.25; -1.0 |] in
  let resp_balanced = Mat.gemv gds balanced in
  Printf.printf "  balanced vector response (paper (4.2)): |.|_inf = %.4f\n" (Vec.norm_inf resp_balanced);
  (* Column ratio (paper (4.3)): nearly constant. *)
  let ratio = Array.init 4 (fun i -> Mat.get gds i 1 /. Mat.get gds i 0) in
  Printf.printf "  column ratio G_ds(:,2)./G_ds(:,1) (paper ~1.89): %s\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.4f") ratio)));
  (* SVD (paper (4.4)): second singular value tiny, its right vector has a
     far smaller response (paper (4.5)). *)
  let f = La.Svd.decomp gds in
  Printf.printf "  singular values: %.4f, %.6f (ratio %.1e; paper: 2.274, 0.0016)\n" f.La.Svd.s.(0)
    f.La.Svd.s.(1)
    (f.La.Svd.s.(1) /. f.La.Svd.s.(0));
  let v2 = Mat.col f.La.Svd.v 1 in
  let resp_svd = Mat.gemv gds v2 in
  Printf.printf "  SVD vector response: |.|_inf = %.6f  (%.0fx smaller than balanced)\n"
    (Vec.norm_inf resp_svd)
    (Vec.norm_inf resp_balanced /. Vec.norm_inf resp_svd)

(* ------------------------------------------------------------------ *)
(* Figure 4-3: singular value decay, self vs well-separated interaction *)

let bench_fig_4_3 ~full () =
  section "Figure 4-3 — singular values: self-interaction vs well-separated";
  let per_side = if full then 24 else 16 in
  let panels = if full then 128 else 64 in
  let layout = scn_layout ~per_side "regular" in
  let g = exact_g ~panels layout in
  let tree = Quadtree.create ~max_level:2 layout in
  let s = Quadtree.contacts_of tree ~level:2 ~ix:0 ~iy:0 in
  let d = Quadtree.contacts_of tree ~level:2 ~ix:3 ~iy:2 in
  let self = La.Svd.decomp (Mat.select g ~row_idx:s ~col_idx:s) in
  let far = La.Svd.decomp (Mat.select g ~row_idx:d ~col_idx:s) in
  Printf.printf "  k | sigma_k(G_ss) self     sigma_k(G_ds) separated\n";
  let k = min (Array.length self.La.Svd.s) (Array.length far.La.Svd.s) in
  for i = 0 to k - 1 do
    Printf.printf "  %2d | %12.5e        %12.5e\n" i self.La.Svd.s.(i) far.La.Svd.s.(i)
  done;
  let decay_self = self.La.Svd.s.(k - 1) /. self.La.Svd.s.(0) in
  let decay_far = far.La.Svd.s.(k - 1) /. far.La.Svd.s.(0) in
  Printf.printf "  decay over %d values: self %.1e, separated %.1e (paper: slow vs ~1e-12)\n" k decay_self
    decay_far

(* ------------------------------------------------------------------ *)
(* Tables 4.1 / 4.2: low-rank vs wavelet *)

let bench_tables_4_1_4_2 ~full () =
  section "Tables 4.1 / 4.2 — low-rank vs wavelet (unthresholded and thresholded)";
  let per_side = if full then 32 else 16 in
  let panels = if full then 128 else 64 in
  let ml = if full then Some 3 else Some 3 in
  let ex1 = scn_layout ~per_side "regular" in
  let ex2 = scn_layout ~per_side "alternating" in
  (* The thin strips of the rings/runs layout need finer panels. *)
  let ex3 = scn_layout ~per_side:(if full then 32 else 24) "mixed" in
  let examples =
    [ ("1 regular grid", ex1, panels); ("2 alternating sizes", ex2, panels); ("3 rings + runs", ex3, 128) ]
  in
  Printf.printf "  Table 4.1 (no thresholding):\n";
  Printf.printf "  %-22s %5s | %-26s | %-26s\n" "Example" "n" "low-rank sp/err/reduction"
    "wavelet sp/err/reduction";
  let results =
    List.map
      (fun (name, layout, panels) ->
        let g = exact_g ~panels layout in
        let lr = run_lowrank ?max_level:ml ~g_exact:g layout in
        let wv = run_wavelet ~g_exact:g layout in
        let n = Layout.n_contacts layout in
        Printf.printf "  %-22s %5d | %6.1f %7.2f%% %5.1fx | %6.1f %7.2f%% %5.1fx\n" name n lr.sparsity
          (100.0 *. lr.max_rel_err)
          (Metrics.solve_reduction ~n ~solves:lr.solves)
          wv.sparsity
          (100.0 *. wv.max_rel_err)
          (Metrics.solve_reduction ~n ~solves:wv.solves);
        (name, layout, g, lr, wv))
      examples
  in
  Printf.printf "  (paper: ex1 3.9/5.1%%/3.2 vs 2.5/0.2%%/2.9; ex2 4.1/5.7%%/3.3 vs 2.5/47%%/2.9;\n";
  Printf.printf "          ex3 3.5/12%%/2.8 vs 2.3/31%%/2.5)\n\n";
  (* The paper compares the wavelet method two ways: thresholded to the same
     sparsity as the low-rank G_wt, and thresholded to the same accuracy —
     with a star when even the unthresholded wavelet representation cannot
     reach the low-rank accuracy. *)
  let wavelet_equal_accuracy ~g_exact layout ~target_frac =
    let repr = Wavelet.extract (Wavelet.create ~p:2 layout) (Blackbox.of_dense g_exact) in
    let frac_of r =
      (Metrics.error_dense ~exact:g_exact ~approx:(Repr.to_dense r)).Metrics.frac_above_10pct
    in
    if frac_of repr > target_frac then None
    else begin
      (* Sparsity factor is monotone in the threshold target; bisect for the
         sparsest representation still meeting the accuracy target. *)
      let lo = ref 1.0 and hi = ref 64.0 in
      for _ = 1 to 7 do
        let mid = sqrt (!lo *. !hi) in
        if frac_of (Repr.threshold repr ~target:mid) <= target_frac then lo := mid else hi := mid
      done;
      Some (Repr.sparsity_gw (Repr.threshold repr ~target:!lo))
    end
  in
  Printf.printf "  Table 4.2 (low-rank thresholded to ~6x; wavelet at equal sparsity and at equal accuracy):\n";
  Printf.printf "  %-22s | %-20s | %-20s | %-18s\n" "Example" "low-rank thr sp/>10%"
    "wavelet same-sp/>10%" "wavelet equal-acc sp";
  List.iter
    (fun (name, layout, g, (lr : method_result), (wv : method_result)) ->
      let equal_acc =
        match wavelet_equal_accuracy ~g_exact:g layout ~target_frac:lr.thr_frac_above with
        | Some sp -> Printf.sprintf "%.1f" sp
        | None -> "(*) unreachable"
      in
      Printf.printf "  %-22s | %8.1f %8.2f%% | %8.1f %8.2f%% | %s\n" name lr.thr_sparsity
        (100.0 *. lr.thr_frac_above) wv.thr_sparsity (100.0 *. wv.thr_frac_above) equal_acc)
    results;
  Printf.printf "  (paper: ex1 23/0.4%% vs 20/0.8%%; ex2 24/1.0%% vs 2.5*/89%%; ex3 21/1.4%% vs 6.6/94%%;\n";
  Printf.printf "   the (*) marks the paper's own case where the wavelet method never reaches\n";
  Printf.printf "   the low-rank accuracy at any threshold.)\n"

(* ------------------------------------------------------------------ *)
(* Table 4.3: larger examples, sampled error *)

let bench_table_4_3 ~full () =
  section "Table 4.3 — larger examples (low-rank, sampled error)";
  let examples =
    if full then
      [
        ("4: 64x64 alternating", scn_layout ~per_side:64 "alternating", 256);
        ("5: 10240-contact mixed", scn_layout ~per_side:128 ~seed:11 "large", 256);
      ]
    else
      [
        ("4: 32x32 alternating", scn_layout ~per_side:32 "alternating", 128);
        ("5: large mixed", scn_layout ~per_side:32 ~seed:11 "large", 128);
      ]
  in
  Printf.printf "  %-24s %6s | %7s %8s | %8s %7s | %6s\n" "Example" "n" "spars." "max err" "thr sp."
    ">10%" "reduc.";
  List.iter
    (fun (name, layout, panels) ->
      let n = Layout.n_contacts layout in
      let bb = eig_blackbox ~panels layout in
      let repr = Lowrank.extract layout bb in
      let solves = Blackbox.solve_count bb in
      (* 10% column sample for the error, as the thesis does (capped at 256
         columns so the sampling doesn't dominate the paper-scale runs). *)
      let sample = Metrics.sample_indices ~n ~count:(min 256 (max 8 (n / 10))) in
      let exact_cols = Blackbox.extract_columns (eig_blackbox ~panels layout) sample in
      let approx_cols = Subcouple_op.columns (Repr.op repr) sample in
      let err = Metrics.error_sampled ~exact_columns:exact_cols ~approx_columns:approx_cols in
      let thr = Repr.threshold repr ~target:6.0 in
      let thr_cols = Subcouple_op.columns (Repr.op thr) sample in
      let err_thr = Metrics.error_sampled ~exact_columns:exact_cols ~approx_columns:thr_cols in
      Printf.printf "  %-24s %6d | %7.1f %7.2f%% | %8.1f %6.2f%% | %5.1fx\n%!" name n
        (Repr.sparsity_gw repr) (100.0 *. err.Metrics.max_rel_error) (Repr.sparsity_gw thr)
        (100.0 *. err_thr.Metrics.frac_above_10pct)
        (Metrics.solve_reduction ~n ~solves))
    examples;
  Printf.printf "  (paper: ex4 sp 10, 6.3%% max, thr 62, 1.7%% >10%%, 8.7x;\n";
  Printf.printf "          ex5 sp 21, 5.3%% max, thr 129, 3.2%% >10%%, 18x)\n"

(* ------------------------------------------------------------------ *)
(* Figures 4-9 / 4-11: spy plots of the low-rank G_wt *)

let bench_fig_4_9_11 ~full () =
  section "Figures 4-9 / 4-11 — spy plots of low-rank G_wt";
  let ex3 = scn_layout ~per_side:16 "mixed" in
  let g3 = exact_g ~panels:64 ex3 in
  let repr3 = Lowrank.extract ~max_level:3 ex3 (Blackbox.of_dense g3) in
  Printf.printf "Example 3 (rings + runs), thresholded:\n";
  Sparsemat.Spy.print ~width:56 (Repr.threshold repr3 ~target:6.0).Repr.gw;
  let per5 = if full then 64 else 32 in
  let ex5 = scn_layout ~per_side:per5 ~seed:11 "large" in
  let bb5 = eig_blackbox ~panels:128 ex5 in
  let repr5 = Lowrank.extract ex5 bb5 in
  Printf.printf "\nExample 5 (large mixed), thresholded:\n";
  Sparsemat.Spy.print ~width:56 (Repr.threshold repr5 ~target:6.0).Repr.gw

(* ------------------------------------------------------------------ *)
(* Ablation A1: symmetric refinement (§4.3.1) *)

let bench_ablation_symmetry ~full:_ () =
  section "Ablation — symmetric refinement (4.16)/(4.24) on vs off (thesis §4.3.1)";
  let layout = scn_layout ~per_side:16 "alternating" in
  let g = exact_g ~panels:64 layout in
  let tree = Quadtree.create ~max_level:3 layout in
  let apply_err rb =
    let apply_rb = Subcouple_op.apply (Rowbasis.op rb) in
    let worst = ref 0.0 in
    for _ = 1 to 5 do
      let v = La.Rng.gaussian_array rng (Layout.n_contacts layout) in
      let exact = Mat.gemv g v in
      let err = Vec.norm2 (Vec.sub (apply_rb v) exact) /. Vec.norm2 exact in
      worst := Float.max !worst err
    done;
    !worst
  in
  let on = Rowbasis.build ~symmetric_refinement:true tree layout (Blackbox.of_dense g) in
  let off = Rowbasis.build ~symmetric_refinement:false tree layout (Blackbox.of_dense g) in
  Printf.printf "  apply-operator relative error:  refinement on %.2e, off %.2e (%.0fx)\n"
    (apply_err on) (apply_err off)
    (apply_err off /. apply_err on);
  Printf.printf "  (paper: 'dramatic improvement in accuracy at < 2x cost')\n"

(* ------------------------------------------------------------------ *)
(* Ablation A2: wavelet moment order p *)

let bench_ablation_moments ~full:_ () =
  section "Ablation — wavelet moment order p (thesis §3.2.1: p = 2 chosen)";
  let layout = scn_layout ~per_side:16 "regular" in
  let g = exact_g ~panels:64 layout in
  Printf.printf "  %3s | %8s | %9s | %6s\n" "p" "spars." "max err" "solves";
  List.iter
    (fun p ->
      let bb = Blackbox.of_dense g in
      let repr = Wavelet.extract (Wavelet.create ~p ~max_level:2 layout) bb in
      let err = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
      Printf.printf "  %3d | %8.2f | %8.2f%% | %6d\n" p (Repr.sparsity_gw repr)
        (100.0 *. err.Metrics.max_rel_error) repr.Repr.solves)
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Ablation A3: fast-Poisson preconditioner Dirichlet fraction sweep *)

let bench_ablation_precond ~full:_ () =
  section "Ablation — fast-Poisson preconditioner Dirichlet fraction sweep (thesis §2.2.2)";
  let fd_profile = fd_profile_resolved in
  let layout = scn_layout ~per_side:8 "regular" in
  let n = Layout.n_contacts layout in
  Printf.printf "  %6s | %s\n" "p" "avg iterations";
  List.iter
    (fun p ->
      let s = Fdsolver.Fd_solver.create ~precond:(Fdsolver.Fd_solver.Fast_poisson p) fd_profile layout ~nx:32 ~nz:8 in
      let bb = Fdsolver.Fd_solver.blackbox s in
      for k = 0 to 9 do
        let u = Array.make n 0.0 in
        u.(k mod n) <- 1.0;
        ignore (Blackbox.apply bb u)
      done;
      Printf.printf "  %6.2f | %.1f\n" p (La.Krylov.average_iterations (Fdsolver.Fd_solver.stats s)))
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Sparse direct Cholesky (§2.2.2's alternative): fill-in growth and the
   amortization trade against PCG *)

let bench_direct_solver ~full () =
  section "Direct sparse Cholesky (§2.2.2) — fill-in and amortization vs PCG";
  let layout = scn_layout ~per_side:8 "regular" in
  let n_contacts = Layout.n_contacts layout in
  Printf.printf "  %4s %8s %10s %8s | %10s %10s | %12s\n" "nx" "nodes" "nnz(L)" "fill/n" "factor(s)"
    "solve(s)" "PCG solve(s)";
  let sizes = if full then [ 16; 32; 64 ] else [ 16; 32 ] in
  List.iter
    (fun nx ->
      let nz = nx / 4 in
      let nodes = nx * nx * nz in
      let t0 = Unix.gettimeofday () in
      let d = Fdsolver.Direct_solver.create fd_profile_resolved layout ~nx ~nz in
      let t_factor = Unix.gettimeofday () -. t0 in
      let u = Array.make n_contacts 0.0 in
      u.(0) <- 1.0;
      let t1 = Unix.gettimeofday () in
      let i_direct = Fdsolver.Direct_solver.solve d u in
      let t_solve = Unix.gettimeofday () -. t1 in
      let s =
        Fdsolver.Fd_solver.create ~precond:(Fdsolver.Fd_solver.Fast_poisson 0.25) fd_profile_resolved
          layout ~nx ~nz
      in
      let t2 = Unix.gettimeofday () in
      let i_pcg = Fdsolver.Fd_solver.solve s u in
      let t_pcg = Unix.gettimeofday () -. t2 in
      let agree = Vec.norm2 (Vec.sub i_direct i_pcg) /. Vec.norm2 i_pcg in
      Printf.printf "  %4d %8d %10d %8.1f | %10.3f %10.5f | %12.5f   (agree %.0e)\n%!" nx nodes
        (Fdsolver.Direct_solver.factor_nnz d)
        (float_of_int (Fdsolver.Direct_solver.factor_nnz d) /. float_of_int nodes)
        t_factor t_solve t_pcg agree)
    sizes;
  Printf.printf "  (thesis: sparse Cholesky fill O(n^(4/3) log n) on 3-D grids — 'still not\n";
  Printf.printf "   acceptable for large problems'; the factorization amortizes over the n\n";
  Printf.printf "   extraction solves, so direct wins on small grids and loses on large ones.)\n"

(* ------------------------------------------------------------------ *)
(* Comparison of §4.5: IES3-style pairwise SVDs vs the global-basis method *)

let bench_pairwise_baseline ~full:_ () =
  section "Comparison (§4.5) — IES3-style per-pair SVDs vs the black-box global basis";
  Printf.printf "  The pairwise baseline compresses every interactive block G(d,s) with its own\n";
  Printf.printf "  truncated SVD. It needs entry access to G (n naive solves here) and stores\n";
  Printf.printf "  per-pair importance vectors; the thesis's method shares one row basis per\n";
  Printf.printf "  square across all destinations and needs only O(log n) black-box solves.\n\n";
  let layout = scn_layout ~per_side:16 "alternating" in
  let n = Layout.n_contacts layout in
  let g = exact_g ~panels:64 layout in
  let tree = Quadtree.create ~max_level:3 layout in
  let pw = Pairwise.build tree g in
  let err_pw = Metrics.error_dense ~exact:g ~approx:(Pairwise.to_dense pw) in
  let bb = Blackbox.of_dense g in
  let repr = Lowrank.extract ~max_level:3 layout bb in
  let err_lr = Metrics.error_dense ~exact:g ~approx:(Repr.to_dense repr) in
  let lr_storage = Sparsemat.Csr.nnz repr.Repr.q + Repr.nnz_gw repr in
  Printf.printf "  %-26s %12s %12s %10s %12s\n" "" "max rel err" ">10% frac" "floats" "G accesses";
  Printf.printf "  %-26s %11.2f%% %11.2f%% %10d %12s\n" "pairwise SVD (IES3-style)"
    (100.0 *. err_pw.Metrics.max_rel_error) (100.0 *. err_pw.Metrics.frac_above_10pct)
    (Pairwise.storage_floats pw)
    (Printf.sprintf "%d solves*" n);
  Printf.printf "  %-26s %11.2f%% %11.2f%% %10d %12s\n" "global basis (this work)"
    (100.0 *. err_lr.Metrics.max_rel_error) (100.0 *. err_lr.Metrics.frac_above_10pct) lr_storage
    (Printf.sprintf "%d solves" repr.Repr.solves);
  Printf.printf "  (* entry access assumed free by IES3; a black-box solver cannot provide it.)\n";
  Printf.printf "  blocks stored by the pairwise baseline: %d\n" (Pairwise.block_count pw)

(* ------------------------------------------------------------------ *)
(* Ablation A4: placement jitter — where geometry-only bases break *)

let bench_ablation_jitter ~full:_ () =
  section "Ablation — placement jitter: wavelet vs low-rank robustness";
  Printf.printf "  Contacts of equal size are offset inside their cells by a fraction of the\n";
  Printf.printf "  available slack. Jitter varies each contact's shielding by its grounded\n";
  Printf.printf "  neighbors, which no geometry-only (moment-matching) basis can see; the\n";
  Printf.printf "  operator-adapted low-rank basis absorbs it. This generalizes the thesis's\n";
  Printf.printf "  finding that \"contacts of different sizes\" break the wavelet method.\n\n";
  Printf.printf "  %6s | %-24s | %-24s\n" "jitter" "wavelet max err / >10%" "low-rank max err / >10%";
  List.iter
    (fun jitter ->
      (* Direct generator call: [jitter] is a bench-only sweep knob, not
         part of the scenario grammar. *)
      let layout = Layout.irregular ~size:128.0 ~per_side:16 ~fill:0.4 ~jitter (La.Rng.create 7) () in
      let g = exact_g ~panels:64 layout in
      let wv = run_wavelet ~g_exact:g layout in
      let lr = run_lowrank ~max_level:3 ~g_exact:g layout in
      Printf.printf "  %6.2f | %9.2f%% %10.2f%% | %9.2f%% %10.2f%%\n%!" jitter (100.0 *. wv.max_rel_err)
        (100.0 *. wv.frac_above) (100.0 *. lr.max_rel_err) (100.0 *. lr.frac_above))
    [ 0.0; 0.25; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Operator matvec throughput: dense G vs Q G_w Q' vs a loaded artifact *)

type apply_record = {
  ap_op : string;
  ap_n : int;
  ap_storage : int;
  ap_s_per_matvec : float;
  ap_matvecs_per_s : float;
}

let apply_records : apply_record list ref = ref []

let bench_apply_cost ~full:_ () =
  section "Apply throughput — dense G vs Q G_w Q' vs loaded artifact (bechamel)";
  let layout = scn_layout ~per_side:32 "alternating" in
  let n = Layout.n_contacts layout in
  let bb = eig_blackbox ~panels:128 layout in
  let repr = Repr.threshold (Lowrank.extract layout bb) ~target:6.0 in
  let g = exact_g ~panels:128 layout in
  (* Round-trip the representation through a .sca artifact, as the serving
     CLI would, and prove the loaded operator applies bit-identically —
     sequentially and batched on the pool — before timing it. *)
  let path = Filename.temp_file "subcouple_bench" ".sca" in
  Repr.save repr ~source:"bench apply experiment" ~path;
  let loaded = Repr.load ~path in
  Sys.remove path;
  let dense_op = Subcouple_op.of_dense ~symmetric:true ~source:"dense reference (bench)" g in
  let repr_op = Repr.op repr in
  let loaded_op = Repr.op loaded in
  let probes = Array.init 8 (fun i -> La.Rng.gaussian_array (La.Rng.create (4242 + i)) n) in
  let vec_bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b
  in
  let seq = Subcouple_op.apply_batch ~jobs:1 repr_op probes in
  let seq_loaded = Subcouple_op.apply_batch ~jobs:1 loaded_op probes in
  let par_loaded = Subcouple_op.apply_batch ~jobs:4 loaded_op probes in
  let identical =
    Array.for_all2 vec_bits_equal seq seq_loaded && Array.for_all2 vec_bits_equal seq par_loaded
  in
  Printf.printf "  loaded artifact bit-identical to in-memory repr (jobs 1 and 4): %b\n" identical;
  if not identical then
    failwith "loaded artifact does not apply bit-identically to the in-memory representation";
  let v = La.Rng.gaussian_array rng n in
  Printf.printf "  n = %d\n" n;
  Printf.printf "  %-18s %10s %14s %16s\n" "operator" "floats" "s/matvec" "matvecs/s";
  List.iter
    (fun (name, op) ->
      let t =
        bechamel_time_per_run
          (Bechamel.Test.make ~name
             (Bechamel.Staged.stage (fun () -> ignore (Subcouple_op.apply op v))))
      in
      let per_s = 1.0 /. t in
      Printf.printf "  %-18s %10d %14.3e %16.0f\n%!" name (Subcouple_op.storage_floats op) t per_s;
      apply_records :=
        {
          ap_op = name;
          ap_n = n;
          ap_storage = Subcouple_op.storage_floats op;
          ap_s_per_matvec = t;
          ap_matvecs_per_s = per_s;
        }
        :: !apply_records)
    [ ("dense G", dense_op); ("repr Q Gw Q'", repr_op); ("loaded artifact", loaded_op) ]

(* ------------------------------------------------------------------ *)
(* Parallel extraction: sequential vs domain-pool batched solves *)

(* Set from --jobs before the experiments run; 0 means auto. *)
let bench_jobs = ref 0

let effective_jobs () = if !bench_jobs <= 0 then max 2 (Parallel.Pool.default_jobs ()) else !bench_jobs

type par_record = {
  par_layout : string;
  par_n : int;
  par_jobs : int;
  par_seq_s : float;
  par_par_s : float;
  par_identical : bool;
}

let par_records : par_record list ref = ref []

let bitwise_equal a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if not (Int64.equal (Int64.bits_of_float (Mat.get a i j)) (Int64.bits_of_float (Mat.get b i j)))
      then ok := false
    done
  done;
  !ok

let bench_parallel ~full () =
  section "Parallel extraction — sequential vs batched solves on a domain pool";
  let jobs = effective_jobs () in
  let per_side = if full then 24 else 16 in
  let layout = scn_layout ~per_side "regular" in
  let n = Layout.n_contacts layout in
  let bb = eig_blackbox ~panels:64 layout in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "  layout %s, n = %d, jobs = %d (host recommends %d domains)\n%!" layout.Layout.name n
    jobs
    (Domain.recommended_domain_count ());
  let g_seq, t_seq = time (fun () -> Blackbox.extract_dense ~jobs:1 bb) in
  let g_par, t_par = time (fun () -> Blackbox.extract_dense ~jobs bb) in
  let identical = bitwise_equal g_seq g_par in
  Printf.printf "  naive dense extraction (%d solves each):\n" n;
  Printf.printf "    sequential      %8.3f s\n" t_seq;
  Printf.printf "    jobs = %-2d       %8.3f s   (%.2fx)\n" jobs t_par (t_seq /. t_par);
  Printf.printf "    bit-identical:  %b\n" identical;
  if not identical then failwith "parallel extraction is not bit-identical to sequential";
  if Domain.recommended_domain_count () <= 1 then
    Printf.printf "  (single-core host: expect ~1x; the pool pays off on multicore machines)\n";
  par_records :=
    { par_layout = layout.Layout.name; par_n = n; par_jobs = jobs; par_seq_s = t_seq;
      par_par_s = t_par; par_identical = identical }
    :: !par_records

(* ------------------------------------------------------------------ *)
(* Resilience: wrapper overhead on clean runs, recovery under chaos *)

let bench_chaos ~full () =
  section "Resilience — wrapper overhead (clean) and chaos recovery";
  let jobs = effective_jobs () in
  let per_side = if full then 24 else 16 in
  let layout = scn_layout ~per_side "regular" in
  let n = Layout.n_contacts layout in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Best of two runs per configuration to damp scheduler noise; the
     comparison targets the wrapper's bookkeeping (index assignment, DLS
     context, health aggregation), which is tiny next to a CG solve. *)
  let best_of_2 f =
    let r1, t1 = time f in
    let _, t2 = time f in
    (r1, min t1 t2)
  in
  Printf.printf "  layout %s, n = %d, jobs = %d\n%!" layout.Layout.name n jobs;
  let g_raw, t_raw =
    best_of_2 (fun () -> Blackbox.extract_dense ~jobs (eig_blackbox ~panels:64 layout))
  in
  let g_res, t_res =
    best_of_2 (fun () ->
        let r = Substrate.Resilient.create (eig_blackbox ~panels:64 layout) in
        Blackbox.extract_dense ~jobs (Substrate.Resilient.blackbox r))
  in
  let overhead = (t_res -. t_raw) /. t_raw *. 100.0 in
  Printf.printf "  clean dense extraction (%d solves):\n" n;
  Printf.printf "    raw box         %8.3f s\n" t_raw;
  Printf.printf "    resilient box   %8.3f s   (overhead %+.2f%%, target <= 2%%)\n" t_res overhead;
  Printf.printf "    bit-identical:  %b\n" (bitwise_equal g_raw g_res);
  if not (bitwise_equal g_raw g_res) then
    failwith "resilient wrapper changed the extracted conductance matrix";
  (* Recovery leg: a transient fault every 7th solve; the retry policy's
     clean re-solve is the first real inner solve at each fault site, so
     the result must be bit-identical to the fault-free matrix. *)
  let chaos = Substrate.Chaos.create ~every:7 ~fault:Substrate.Chaos.Transient (eig_blackbox ~panels:64 layout) in
  let res = Substrate.Resilient.create (Substrate.Chaos.box chaos) in
  let g_chaos, t_chaos = time (fun () -> Blackbox.extract_dense ~jobs (Substrate.Resilient.blackbox res)) in
  let recovered = bitwise_equal g_raw g_chaos in
  Printf.printf "  chaos recovery (transient fault every 7th solve):\n";
  Printf.printf "    injected %d fault(s), %d retr%s, %8.3f s\n"
    (Substrate.Chaos.injected chaos)
    (Substrate.Resilient.retries res)
    (if Substrate.Resilient.retries res = 1 then "y" else "ies")
    t_chaos;
  Printf.printf "    bit-identical to fault-free: %b\n" recovered;
  if not recovered then failwith "chaos recovery is not bit-identical to the fault-free run"

(* ------------------------------------------------------------------ *)
(* Sharded extraction: fault-domain overhead, resume cost, composed parity *)

type shard_record = {
  sh_layout : string;
  sh_n : int;
  sh_level : int;
  sh_shards : int;
  sh_fresh_s : float;
  sh_resume_s : float;
  sh_total_solves : int;
  sh_resume_live : int;
  sh_identical : bool;
}

let shard_records : shard_record list ref = ref []

let bench_shard ~full () =
  section "Sharded extraction — fault domains, resume cost, composed parity";
  let per_side = if full then 16 else 8 in
  let layout = scn_layout ~per_side "alternating" in
  let n = Layout.n_contacts layout in
  let bb = eig_blackbox layout in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dir = Filename.temp_file "bench_shard" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let level = 1 in
      let (m, fresh), t_fresh =
        time (fun () -> Sharded.extract ~method_:`Lowrank ~shard_level:level ~dir layout bb)
      in
      let op_fresh, _ = Subcouple_op.of_manifest ~dir m in
      let (m2, resumed), t_resume =
        time (fun () -> Sharded.extract ~method_:`Lowrank ~shard_level:level ~dir layout bb)
      in
      let op_resumed, _ = Subcouple_op.of_manifest ~dir m2 in
      (* A clean resume must be pure bookkeeping: every shard skipped, zero
         live solves, and the composed operator bit-identical. *)
      let columns op =
        Subcouple_op.columns op (Array.init n Fun.id)
      in
      let same_bits =
        Array.for_all2
          (fun a b ->
            Array.for_all2
              (fun (x : float) y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
              a b)
          (columns op_fresh) (columns op_resumed)
      in
      let identical =
        same_bits
        && resumed.Substrate.Shard.skipped = fresh.Substrate.Shard.planned
        && resumed.Substrate.Shard.live_solves = 0
        && resumed.Substrate.Shard.total_solves = fresh.Substrate.Shard.total_solves
      in
      Printf.printf "  layout %s, n = %d, %d shard(s) at level %d\n" layout.Layout.name n
        fresh.Substrate.Shard.planned level;
      Printf.printf "    fresh extraction   %8.3f s   (%d solves)\n" t_fresh
        fresh.Substrate.Shard.total_solves;
      Printf.printf "    no-op resume       %8.3f s   (%d live solves, %d cached)\n" t_resume
        resumed.Substrate.Shard.live_solves resumed.Substrate.Shard.cached_solves;
      Printf.printf "    resume repeated no solve: %b\n" identical;
      if not identical then failwith "sharded resume repeated solves";
      shard_records :=
        {
          sh_layout = layout.Layout.name;
          sh_n = n;
          sh_level = level;
          sh_shards = fresh.Substrate.Shard.planned;
          sh_fresh_s = t_fresh;
          sh_resume_s = t_resume;
          sh_total_solves = fresh.Substrate.Shard.total_solves;
          sh_resume_live = resumed.Substrate.Shard.live_solves;
          sh_identical = identical;
        }
        :: !shard_records)

(* ------------------------------------------------------------------ *)
(* Tracing: disabled-path overhead on the par workload, enabled-run audit *)

type trace_record = {
  tr_n : int;
  tr_jobs : int;
  tr_ns_per_call : float;
  tr_hits : int;
  tr_projected_pct : float;
  tr_off_s : float;
  tr_on_s : float;
  tr_events : int;
  tr_identical : bool;
}

let trace_records : trace_record list ref = ref []

let bench_trace ~full () =
  section "Tracing — disabled-path overhead on the par workload (gate: <= 2%)";
  let jobs = effective_jobs () in
  let per_side = if full then 24 else 16 in
  let layout = scn_layout ~per_side "regular" in
  let n = Layout.n_contacts layout in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best_of_2 f =
    let r1, t1 = time f in
    let _, t2 = time f in
    (r1, min t1 t2)
  in
  (* Per-hit cost of a disabled instrument. A disabled [with_span] is one
     Atomic.get and a branch — the most expensive of the three instruments
     (incr/observe do the same check without the closure call), so it upper-
     bounds the per-hit cost. *)
  Trace.set_enabled false;
  let payload = Sys.opaque_identity (fun () -> ()) in
  let t_call =
    bechamel_time_per_run
      (Bechamel.Test.make ~name:"disabled with_span"
         (Bechamel.Staged.stage (fun () -> Trace.with_span "bench.noop" payload)))
  in
  Printf.printf "  disabled with_span: %.1f ns/call\n%!" (t_call *. 1e9);
  (* The par experiment's extraction, untraced (best of two). *)
  let extract () = Blackbox.extract_dense ~jobs (eig_blackbox ~panels:64 layout) in
  let g_off, t_off = best_of_2 extract in
  (* One traced run counts every instrument hit and proves bit-identity. *)
  Trace.reset ();
  Trace.set_enabled true;
  let g_on, t_on = time extract in
  Trace.set_enabled false;
  let events = Trace.event_count () in
  let counter_hits =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Trace.summary ()).Trace.counters
  in
  Trace.reset ();
  let hits = events + counter_hits in
  let identical = bitwise_equal g_off g_on in
  (* The gate: the same extraction passes [hits] disabled instruments; their
     projected total cost must stay under 2% of the untraced wall clock.
     (Projection beats re-timing the disabled run here: a few thousand
     branches per multi-second extraction sit far below scheduler noise.) *)
  let projected_pct = float_of_int hits *. t_call /. t_off *. 100.0 in
  Printf.printf "  extraction (n = %d, jobs = %d):\n" n jobs;
  Printf.printf "    tracing disabled  %8.3f s\n" t_off;
  Printf.printf "    tracing enabled   %8.3f s   (%d events, %d counter increments)\n" t_on events
    counter_hits;
  Printf.printf "    bit-identical:    %b\n" identical;
  Printf.printf "    disabled-path overhead: %d hits x %.1f ns = %.4f%% of wall (gate <= 2%%)\n"
    hits (t_call *. 1e9) projected_pct;
  if not identical then failwith "tracing changed the extracted conductance matrix";
  if projected_pct > 2.0 then
    failwith
      (Printf.sprintf "disabled-tracing overhead %.3f%% exceeds the 2%% budget" projected_pct);
  trace_records :=
    {
      tr_n = n;
      tr_jobs = jobs;
      tr_ns_per_call = t_call *. 1e9;
      tr_hits = hits;
      tr_projected_pct = projected_pct;
      tr_off_s = t_off;
      tr_on_s = t_on;
      tr_events = events;
      tr_identical = identical;
    }
    :: !trace_records

(* ------------------------------------------------------------------ *)
(* Kernel layer: boxed vs Bigarray, fused vs looped spmv, blocked vs plain *)

type kernel_record = {
  kr_name : string;  (* what is being compared *)
  kr_n : int;  (* problem size *)
  kr_baseline : string;
  kr_baseline_s : float;
  kr_candidate : string;
  kr_candidate_s : float;
  kr_bit_identical : bool;
  kr_gated : bool;  (* gated records must show candidate <= baseline *)
}

let kernel_records : kernel_record list ref = ref []

let bench_kernels ~full () =
  section "Kernel layer — boxed vs Bigarray, fused vs looped spmv (bechamel)";
  (* Earlier experiments can leave a large, fragmented live heap (dense
     reference matrices, DCT tables); compact so kernel timings measure
     the kernels, not the allocator state another experiment left behind. *)
  Gc.compact ();
  let vec_bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b
  in
  let batch_bits_equal a b =
    Array.length a = Array.length b && Array.for_all2 vec_bits_equal a b
  in
  let time name f =
    bechamel_time_per_run (Bechamel.Test.make ~name (Bechamel.Staged.stage f))
  in
  let record ~gated name n (bl_name, bl_s) (cd_name, cd_s) identical =
    Printf.printf "  %-34s n=%-7d %-10s %.3e s   %-10s %.3e s   %5.2fx%s%s\n%!" name n bl_name
      bl_s cd_name cd_s (bl_s /. cd_s)
      (if identical then "  [bit-identical]" else "  [MISMATCH]")
      (if gated then "  (gated)" else "");
    if not identical then failwith (name ^ ": candidate kernel is not bit-identical");
    kernel_records :=
      {
        kr_name = name;
        kr_n = n;
        kr_baseline = bl_name;
        kr_baseline_s = bl_s;
        kr_candidate = cd_name;
        kr_candidate_s = cd_s;
        kr_bit_identical = identical;
        kr_gated = gated;
      }
      :: !kernel_records
  in
  (* --- BLAS-1: boxed Vec vs Bvec ----------------------------------- *)
  let n1 = if full then 262_144 else 65_536 in
  let a = La.Rng.gaussian_array (La.Rng.create 101) n1 in
  let b = La.Rng.gaussian_array (La.Rng.create 102) n1 in
  let ba = La.Bvec.of_array a and bb = La.Bvec.of_array b in
  record ~gated:false "dot" n1
    ("Vec.dot", time "vec dot" (fun () -> ignore (Vec.dot a b)))
    ("Bvec.dot", time "bvec dot" (fun () -> ignore (La.Bvec.dot ba bb)))
    (Int64.equal (Int64.bits_of_float (Vec.dot a b)) (Int64.bits_of_float (La.Bvec.dot ba bb)));
  let y_boxed = Vec.copy b in
  let y_big = La.Bvec.of_array b in
  record ~gated:false "axpy" n1
    ("Vec.axpy", time "vec axpy" (fun () -> Vec.axpy ~alpha:0.5 a y_boxed))
    ("Bvec.axpy", time "bvec axpy" (fun () -> La.Bvec.axpy ~alpha:0.5 ba y_big))
    (let y1 = Vec.copy b and y2 = La.Bvec.of_array b in
     Vec.axpy ~alpha:0.5 a y1;
     La.Bvec.axpy ~alpha:0.5 ba y2;
     vec_bits_equal y1 (La.Bvec.to_array y2));
  (* --- dense gemv: Mat vs Bmat -------------------------------------- *)
  let nd = if full then 768 else 512 in
  let dm = Mat.random (La.Rng.create 103) nd nd in
  let bm = La.Bmat.of_mat dm in
  let xv = La.Rng.gaussian_array (La.Rng.create 104) nd in
  record ~gated:false "dense gemv" nd
    ("Mat.gemv", time "mat gemv" (fun () -> ignore (Mat.gemv dm xv)))
    ("Bmat.gemv", time "bmat gemv" (fun () -> ignore (La.Bmat.gemv bm xv)))
    (vec_bits_equal (Mat.gemv dm xv) (La.Bmat.gemv bm xv));
  (* --- CSR: fused multi-RHS vs per-column loop, blocked vs plain ----- *)
  (* A grid Laplacian large enough (~190k nnz reduced, ~65k nodes at full
     scale) that the matrix no longer fits in L2: the regime where reading
     it once per block instead of once per column pays. *)
  let nx = if full then 64 else 48 in
  let nz = nx / 4 in
  let layout = scn_layout ~per_side:8 "regular" in
  let grid = Fdsolver.Grid.create fd_profile_resolved layout ~nx ~nz in
  let acsr = Fdsolver.Grid.to_csr grid in
  let ncsr = Sparsemat.Csr.rows acsr in
  let width = if full then 32 else 16 in
  let xs =
    Array.init width (fun i -> La.Rng.gaussian_array (La.Rng.create (200 + i)) ncsr)
  in
  let looped () = Array.map (Sparsemat.Csr.gemv acsr) xs in
  let fused () = Sparsemat.Csr.apply_batch acsr xs in
  record ~gated:true
    (Printf.sprintf "csr spmv x%d rhs" width)
    ncsr
    ("per-column", time "looped spmv" (fun () -> ignore (looped ())))
    ("fused", time "fused spmv" (fun () -> ignore (fused ())))
    (batch_bits_equal (looped ()) (fused ()));
  record ~gated:false "csr spmv blocked" ncsr
    ("plain", time "plain spmv" (fun () -> ignore (Sparsemat.Csr.gemv acsr xs.(0))))
    ("blocked", time "blocked spmv" (fun () -> ignore (Sparsemat.Csr.gemv_blocked acsr xs.(0))))
    (vec_bits_equal (Sparsemat.Csr.gemv acsr xs.(0)) (Sparsemat.Csr.gemv_blocked acsr xs.(0)));
  (* --- CG: Bigarray working vectors vs the boxed reference ----------- *)
  (* Par-workload recurrence: the par experiment's CG runs
     unpreconditioned on packed contact-panel dofs (the eigenfunction
     solver's A_cc system). The real A_cc apply is DCT-dominated, so an
     end-to-end timing would measure the transform, not the solver; here
     the operator is a fixed-spectrum diagonal costing one O(n) sweep —
     cheap enough that the measurement isolates the CG recurrence, which
     is the part the kernel layer rewrote (three fewer vector passes and
     one fewer allocation per iteration). [tol 0.0] pins both sides to
     exactly [max_iter] iterations of identical work. End-to-end par
     results (real operator) stay covered by the par experiment and the
     probe digests. *)
  let par_layout = scn_layout ~per_side:16 "regular" in
  let par_eig = Eigsolver.Eig_solver.create profile par_layout ~panels_per_side:64 in
  let ncg = Eigsolver.Eig_solver.panel_count par_eig in
  let diag =
    Array.init ncg (fun i -> 1.0 +. (9.0 *. float_of_int i /. float_of_int (max 1 (ncg - 1))))
  in
  let dbuf = Array.make ncg 0.0 in
  let apply_diag v =
    for i = 0 to ncg - 1 do
      dbuf.(i) <- diag.(i) *. v.(i)
    done;
    dbuf
  in
  let bcg = La.Rng.gaussian_array (La.Rng.create 105) ncg in
  let cg_iters = 80 in
  record ~gated:true "cg recurrence (par panel dofs)" ncg
    ( "cg_boxed",
      time "cg boxed" (fun () ->
          ignore (La.Krylov.cg_boxed ~apply:apply_diag ~tol:0.0 ~max_iter:cg_iters bcg)) )
    ( "cg bigarray",
      time "cg bigarray" (fun () ->
          ignore (La.Krylov.cg ~apply:apply_diag ~tol:0.0 ~max_iter:cg_iters bcg)) )
    (vec_bits_equal
       (La.Krylov.cg ~apply:apply_diag ~tol:0.0 ~max_iter:cg_iters bcg).La.Krylov.x
       (La.Krylov.cg_boxed ~apply:apply_diag ~tol:0.0 ~max_iter:cg_iters bcg).La.Krylov.x);
  (* Dense-operator shape: O(n^2) apply dominates, so this records how
     little headroom the solver rewrite has when the operator is the
     cost — an honest upper-bound-context row, not a gate. *)
  let nds = 128 in
  let c = Mat.random (La.Rng.create 107) nds nds in
  let spd =
    Mat.add (Mat.mul (Mat.transpose c) c) (Mat.scale (float_of_int nds) (Mat.identity nds))
  in
  let apply_spd = Mat.gemv spd in
  let rhs = Array.init 8 (fun i -> La.Rng.gaussian_array (La.Rng.create (300 + i)) nds) in
  let cg_all solver = Array.iter (fun b -> ignore (solver ~apply:apply_spd b)) rhs in
  record ~gated:false "cg (dense operator)" nds
    ("cg_boxed", time "cg boxed" (fun () -> cg_all (fun ~apply b -> La.Krylov.cg_boxed ~apply b)))
    ("cg bigarray", time "cg bigarray" (fun () -> cg_all (fun ~apply b -> La.Krylov.cg ~apply b)))
    (Array.for_all
       (fun b ->
         vec_bits_equal (La.Krylov.cg ~apply:apply_spd b).La.Krylov.x
           (La.Krylov.cg_boxed ~apply:apply_spd b).La.Krylov.x)
       rhs);
  (* FD-workload shape: grid-node vectors (the heavy BLAS-1 path), with
     the allocation-free [Grid.apply_into] closure on both sides and a
     fixed iteration count (tol 0 runs exactly max_iter iterations), so
     the measured delta is again the vector layer. *)
  let nxf = 32 in
  let gridf = Fdsolver.Grid.create fd_profile_resolved layout ~nx:nxf ~nz:(nxf / 4) in
  let nf = Fdsolver.Grid.node_count gridf in
  let buf = Array.make nf 0.0 in
  let apply_grid v =
    Fdsolver.Grid.apply_into gridf ~src:v ~dst:buf;
    buf
  in
  let bf = La.Rng.gaussian_array (La.Rng.create 106) nf in
  let iters = 60 in
  record ~gated:true "cg (fd grid stencil)" nf
    ( "cg_boxed",
      time "cg boxed fd" (fun () ->
          ignore (La.Krylov.cg_boxed ~apply:apply_grid ~tol:0.0 ~max_iter:iters bf)) )
    ( "cg bigarray",
      time "cg bigarray fd" (fun () ->
          ignore (La.Krylov.cg ~apply:apply_grid ~tol:0.0 ~max_iter:iters bf)) )
    (vec_bits_equal
       (La.Krylov.cg ~apply:apply_grid ~tol:0.0 ~max_iter:iters bf).La.Krylov.x
       (La.Krylov.cg_boxed ~apply:apply_grid ~tol:0.0 ~max_iter:iters bf).La.Krylov.x);
  (* --- Repr: fused three-sweep batch vs per-column apply ------------- *)
  let rlayout = scn_layout ~per_side:16 "alternating" in
  let nrep = Layout.n_contacts rlayout in
  let repr =
    Repr.threshold (Lowrank.extract rlayout (eig_blackbox ~panels:64 rlayout)) ~target:6.0
  in
  let rop = Repr.op repr in
  let rxs = Array.init 16 (fun i -> La.Rng.gaussian_array (La.Rng.create (400 + i)) nrep) in
  record ~gated:false "repr batch x16 rhs" nrep
    ( "per-column",
      time "repr looped" (fun () -> ignore (Array.map (Subcouple_op.apply rop) rxs)) )
    ("fused", time "repr fused" (fun () -> ignore (Repr.apply_batch repr ~jobs:1 rxs)))
    (batch_bits_equal (Array.map (Subcouple_op.apply rop) rxs) (Repr.apply_batch repr ~jobs:1 rxs))

(* ------------------------------------------------------------------ *)
(* Scenario matrix: every registry process through its own solver stack *)

type scn_record = {
  sc_name : string;
  sc_solver : string;
  sc_n : int;
  sc_solves : int;
  sc_wall_s : float;
  sc_digest : string;
}

let scn_records : scn_record list ref = ref []

let bench_scenario_matrix ~full () =
  section "Scenario matrix — every registry process through its own solver stack";
  Printf.printf "  %-19s %-10s %5s %7s %9s  %s\n" "scenario" "solver" "n" "solves" "wall (s)"
    "probe digest";
  List.iter
    (fun s ->
      (* Reduced sizes: shrink generator placements to per-side 8 (mixed
         clamps itself to 16 — its strips need the density); explicit
         rectangle processes (epi, guard-ring-heavy) run as shipped. *)
      let s =
        match (full, s.Scenario.placement) with
        | false, Scenario.Generator _ -> Scenario.with_per_side s 8
        | _ -> s
      in
      let layout = Scenario.layout s in
      let n = Layout.n_contacts layout in
      let bb = Scenario.blackbox s layout in
      let t0 = Unix.gettimeofday () in
      let probes = Array.init 2 (fun i -> La.Rng.gaussian_array (La.Rng.create (1234 + i)) n) in
      let responses = Array.map (Blackbox.apply bb) probes in
      let wall = Unix.gettimeofday () -. t0 in
      (* Hash the exact response bits, like the CLI probe digests: the
         recorded matrix row is comparable across runs and platforms. *)
      let buf = Buffer.create 1024 in
      Array.iter
        (fun v -> Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) v)
        responses;
      let digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
      Printf.printf "  %-19s %-10s %5d %7d %9.3f  %s\n%!" s.Scenario.name
        (Scenario.solver_name s.Scenario.solver) n (Blackbox.solve_count bb) wall digest;
      scn_records :=
        {
          sc_name = s.Scenario.name;
          sc_solver = Scenario.solver_name s.Scenario.solver;
          sc_n = n;
          sc_solves = Blackbox.solve_count bb;
          sc_wall_s = wall;
          sc_digest = digest;
        }
        :: !scn_records)
    (Scenario.builtins ())

(* ------------------------------------------------------------------ *)
(* Serving daemon: matvec throughput vs jobs, coalescing gain *)

type serve_record = {
  sv_mode : string;  (* "uncoalesced" | "coalesced" | "batched" *)
  sv_jobs : int;
  sv_clients : int;
  sv_requests : int;
  sv_wall_s : float;
  sv_rps : float;  (* matvecs per second through the socket *)
  sv_mean_batch : float;  (* mean coalesced batch width (0 when unbatched) *)
  sv_bit_identical : bool;
}

let serve_records : serve_record list ref = ref []

let bench_serve ~full () =
  section "Serving daemon — matvec throughput vs jobs, coalescing gain (gate: bit-identical)";
  let n = if full then 512 else 192 in
  let clients = if full then 8 else 4 in
  let per = if full then 40 else 25 in
  (* Synthetic representation (orthogonal Q from QR, random symmetric
     G_w): exactly representable, so the experiment times the serving
     stack, not a solver. *)
  let q = (La.Qr.decomp (Mat.random rng n n)).La.Qr.q in
  let m = Mat.random rng n n in
  let gw = Mat.add m (Mat.transpose m) in
  let repr = Repr.make ~q:(Sparsemat.Csr.of_dense q) ~gw:(Sparsemat.Csr.of_dense gw) ~solves:0 in
  let dir = Filename.temp_file "subcouple_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      Repr.save repr ~kind:"bench" ~source:"bench serve experiment"
        ~path:(Filename.concat dir "g.sca");
      let total = clients * per in
      let vs = Array.init total (fun i -> La.Rng.gaussian_array (La.Rng.create (31337 + i)) n) in
      let reference = Subcouple_op.apply_batch ~jobs:1 (Repr.op repr) vs in
      let vec_bits_equal a b =
        Array.length a = Array.length b
        && Array.for_all2
             (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
             a b
      in
      Printf.printf "  n = %d, %d clients x %d matvecs each (%d total)\n" n clients per total;
      Printf.printf "  %-12s %5s %10s %12s %11s  %s\n" "mode" "jobs" "wall (s)" "matvecs/s"
        "mean batch" "bit-identical";
      let run_mode ~mode ~jobs =
        (* Fresh daemon per run: clean stats, cold-to-warm cache outside
           the timed window. *)
        let sock = Filename.concat dir "bench.sock" in
        let srv = Serve.Server.create ~jobs ~root:dir ~listen:(`Unix sock) () in
        let th = Thread.create Serve.Server.run srv in
        let results = Array.make total [||] in
        let wall =
          Fun.protect
            ~finally:(fun () ->
              Serve.Server.stop srv;
              Thread.join th)
            (fun () ->
              Serve.Client.with_connection (`Unix sock) (fun cl ->
                  ignore (Serve.Client.info cl ~artifact:"g.sca" : Serve.Client.info));
              let t0 = Unix.gettimeofday () in
              (match mode with
              | `Batched ->
                (* One pre-formed batch: the fused-sweep ceiling. *)
                Serve.Client.with_connection (`Unix sock) (fun cl ->
                    let outs, _ = Serve.Client.apply_batch cl ~artifact:"g.sca" vs in
                    Array.blit outs 0 results 0 total)
              | `Singles coalesce ->
                let threads =
                  List.init clients (fun c ->
                      Thread.create
                        (fun () ->
                          Serve.Client.with_connection (`Unix sock) (fun cl ->
                              for k = 0 to per - 1 do
                                let i = (c * per) + k in
                                let y, _ =
                                  Serve.Client.apply ~coalesce cl ~artifact:"g.sca" vs.(i)
                                in
                                results.(i) <- y
                              done))
                        ())
                in
                List.iter Thread.join threads);
              Unix.gettimeofday () -. t0)
        in
        let mean_batch =
          Option.value ~default:0.0
            (List.assoc_opt "batch.size.mean" (Serve.Stats.pairs (Serve.Server.stats srv)))
        in
        let identical = Array.for_all2 vec_bits_equal reference results in
        let name =
          match mode with
          | `Batched -> "batched"
          | `Singles true -> "coalesced"
          | `Singles false -> "uncoalesced"
        in
        let rps = float_of_int total /. wall in
        Printf.printf "  %-12s %5d %10.4f %12.0f %11.2f  %b\n%!" name jobs wall rps mean_batch
          identical;
        serve_records :=
          {
            sv_mode = name;
            sv_jobs = jobs;
            sv_clients = (match mode with `Batched -> 1 | `Singles _ -> clients);
            sv_requests = total;
            sv_wall_s = wall;
            sv_rps = rps;
            sv_mean_batch = mean_batch;
            sv_bit_identical = identical;
          }
          :: !serve_records;
        if not identical then
          failwith ("serve bench: " ^ name ^ " responses are not bit-identical to direct apply")
      in
      List.iter
        (fun jobs ->
          run_mode ~mode:(`Singles false) ~jobs;
          run_mode ~mode:(`Singles true) ~jobs;
          run_mode ~mode:`Batched ~jobs)
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* JSON results (--json FILE): hand-rolled writer, no JSON dependency *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Run metadata for bench-history comparisons.  Deliberately hostname-free:
   snapshots are committed, and two runs on the same platform triple should
   be comparable without leaking machine identities into the repo. *)
let first_line_of_command cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let git_rev () =
  Option.value ~default:"unknown" (first_line_of_command "git rev-parse HEAD 2>/dev/null")

let platform_triple () =
  let os_arch = Option.value ~default:"unknown" (first_line_of_command "uname -sm 2>/dev/null") in
  os_arch ^ " ocaml-" ^ Sys.ocaml_version

let schema_version = 1

let write_json path ~full records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"schema_version\": %d,\n" schema_version;
      Printf.fprintf oc "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
      Printf.fprintf oc "  \"platform\": \"%s\",\n" (json_escape (platform_triple ()));
      Printf.fprintf oc "  \"domains_recommended\": %d,\n" (Domain.recommended_domain_count ());
      Printf.fprintf oc "  \"full\": %b,\n" full;
      Printf.fprintf oc "  \"jobs\": %d,\n" (effective_jobs ());
      Printf.fprintf oc "  \"experiments\": [\n";
      List.iteri
        (fun i (id, desc, wall, solves) ->
          Printf.fprintf oc "    {\"id\": \"%s\", \"description\": \"%s\", \"wall_s\": %.6f, \"solves\": %d}%s\n"
            (json_escape id) (json_escape desc) wall solves
            (if i = List.length records - 1 then "" else ","))
        records;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"parallel_extraction\": [\n";
      let pars = List.rev !par_records in
      List.iteri
        (fun i p ->
          Printf.fprintf oc
            "    {\"layout\": \"%s\", \"n\": %d, \"jobs\": %d, \"seq_s\": %.6f, \"par_s\": %.6f, \
             \"speedup\": %.4f, \"bitwise_identical\": %b}%s\n"
            (json_escape p.par_layout) p.par_n p.par_jobs p.par_seq_s p.par_par_s
            (p.par_seq_s /. p.par_par_s) p.par_identical
            (if i = List.length pars - 1 then "" else ","))
        pars;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"apply_throughput\": [\n";
      let aps = List.rev !apply_records in
      List.iteri
        (fun i a ->
          Printf.fprintf oc
            "    {\"operator\": \"%s\", \"n\": %d, \"storage_floats\": %d, \"s_per_matvec\": %.6e, \
             \"matvecs_per_s\": %.1f}%s\n"
            (json_escape a.ap_op) a.ap_n a.ap_storage a.ap_s_per_matvec a.ap_matvecs_per_s
            (if i = List.length aps - 1 then "" else ","))
        aps;
      Printf.fprintf oc "  ],\n";
      (* New in this PR: not in the validator's required sections, so the
         committed baseline (which predates sharding) stays valid. *)
      Printf.fprintf oc "  \"shard\": [\n";
      let shs = List.rev !shard_records in
      List.iteri
        (fun i s ->
          Printf.fprintf oc
            "    {\"layout\": \"%s\", \"n\": %d, \"level\": %d, \"shards\": %d, \"fresh_s\": %.6f, \
             \"resume_s\": %.6f, \"total_solves\": %d, \"resume_live_solves\": %d, \
             \"bitwise_identical\": %b}%s\n"
            (json_escape s.sh_layout) s.sh_n s.sh_level s.sh_shards s.sh_fresh_s s.sh_resume_s
            s.sh_total_solves s.sh_resume_live s.sh_identical
            (if i = List.length shs - 1 then "" else ","))
        shs;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"trace\": [\n";
      let trs = List.rev !trace_records in
      List.iteri
        (fun i t ->
          Printf.fprintf oc
            "    {\"n\": %d, \"jobs\": %d, \"disabled_ns_per_call\": %.2f, \"instrument_hits\": %d, \
             \"projected_overhead_pct\": %.5f, \"off_s\": %.6f, \"on_s\": %.6f, \"events\": %d, \
             \"bitwise_identical\": %b}%s\n"
            t.tr_n t.tr_jobs t.tr_ns_per_call t.tr_hits t.tr_projected_pct t.tr_off_s t.tr_on_s
            t.tr_events t.tr_identical
            (if i = List.length trs - 1 then "" else ","))
        trs;
      Printf.fprintf oc "  ],\n";
      (* New in this PR (optional for the validator, like "shard": the
         committed baseline predates the scenario layer). *)
      Printf.fprintf oc "  \"scenario_matrix\": [\n";
      let scs = List.rev !scn_records in
      List.iteri
        (fun i s ->
          Printf.fprintf oc
            "    {\"scenario\": \"%s\", \"solver\": \"%s\", \"n\": %d, \"solves\": %d, \
             \"wall_s\": %.6f, \"probe_digest\": \"%s\"}%s\n"
            (json_escape s.sc_name) (json_escape s.sc_solver) s.sc_n s.sc_solves s.sc_wall_s
            (json_escape s.sc_digest)
            (if i = List.length scs - 1 then "" else ","))
        scs;
      Printf.fprintf oc "  ],\n";
      (* New in this PR (optional for the validator, like "shard" and
         "scenario_matrix"). *)
      Printf.fprintf oc "  \"serve\": [\n";
      let svs = List.rev !serve_records in
      List.iteri
        (fun i s ->
          Printf.fprintf oc
            "    {\"mode\": \"%s\", \"jobs\": %d, \"clients\": %d, \"requests\": %d, \
             \"wall_s\": %.6f, \"matvecs_per_s\": %.1f, \"mean_batch\": %.3f, \
             \"bit_identical\": %b}%s\n"
            (json_escape s.sv_mode) s.sv_jobs s.sv_clients s.sv_requests s.sv_wall_s s.sv_rps
            s.sv_mean_batch s.sv_bit_identical
            (if i = List.length svs - 1 then "" else ","))
        svs;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"kernels\": [\n";
      let krs = List.rev !kernel_records in
      List.iteri
        (fun i k ->
          Printf.fprintf oc
            "    {\"name\": \"%s\", \"n\": %d, \"baseline\": \"%s\", \"baseline_s\": %.6e, \
             \"candidate\": \"%s\", \"candidate_s\": %.6e, \"speedup\": %.4f, \
             \"bit_identical\": %b, \"gated\": %b}%s\n"
            (json_escape k.kr_name) k.kr_n (json_escape k.kr_baseline) k.kr_baseline_s
            (json_escape k.kr_candidate) k.kr_candidate_s
            (k.kr_baseline_s /. k.kr_candidate_s)
            k.kr_bit_identical k.kr_gated
            (if i = List.length krs - 1 then "" else ","))
        krs;
      Printf.fprintf oc "  ]\n";
      Printf.fprintf oc "}\n");
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Driver *)

let experiments =
  [
    (* Kernel microbenches run first: experiments run in list order, and a
       large live heap left by an earlier experiment (dense reference
       matrices, DCT tables) taxes every boxed large-array allocation with
       major-GC marking work, distorting the boxed-vs-bigarray baselines
       by 5-6x. First place + Gc.compact = a pristine, reproducible heap. *)
    ("kernels", "Kernel layer: boxed vs Bigarray, fused vs looped spmv", bench_kernels);
    ("t2.1", "Table 2.1: preconditioner effectiveness", bench_table_2_1);
    ("t2.2", "Table 2.2: FD vs eigenfunction solve speed", bench_table_2_2);
    ("t3.1", "Table 3.1: wavelet sparsity/accuracy", bench_table_3_1);
    ("layouts", "Figures 3-6..3-8, 4-8, 4-10: layouts", bench_fig_layouts);
    ("scn", "Scenario matrix: every registry process, own solver stack", bench_scenario_matrix);
    ("f3.9", "Figures 3-9/3-10: wavelet spy plots", bench_fig_3_9_10);
    ("f4.1", "Figure 4-1: two-square intuition", bench_fig_4_1);
    ("f4.3", "Figure 4-3: singular value decay", bench_fig_4_3);
    ("t4.1", "Tables 4.1/4.2: low-rank vs wavelet", bench_tables_4_1_4_2);
    ("t4.3", "Table 4.3: larger examples", bench_table_4_3);
    ("f4.9", "Figures 4-9/4-11: low-rank spy plots", bench_fig_4_9_11);
    ("a1", "Ablation: symmetric refinement", bench_ablation_symmetry);
    ("a2", "Ablation: wavelet moment order", bench_ablation_moments);
    ("a3", "Ablation: preconditioner fraction sweep", bench_ablation_precond);
    ("a4", "Ablation: placement jitter", bench_ablation_jitter);
    ("ies3", "Comparison: pairwise SVD baseline (§4.5)", bench_pairwise_baseline);
    ("direct", "Direct sparse Cholesky: fill and amortization (§2.2.2)", bench_direct_solver);
    ("apply", "Apply throughput: dense vs repr vs loaded artifact", bench_apply_cost);
    ("par", "Parallel extraction: sequential vs domain-pool batch", bench_parallel);
    ("chaos", "Resilience: wrapper overhead on clean runs, chaos recovery", bench_chaos);
    ("shard", "Sharded extraction: fault domains, resume cost, composed parity", bench_shard);
    ("trace", "Tracing: disabled-path overhead gate, enabled-run audit", bench_trace);
    ("serve", "Serving daemon: matvec throughput vs jobs, coalescing gain", bench_serve);
  ]

let run only full list_only list_scenarios json jobs =
  bench_jobs := jobs;
  if list_scenarios then begin
    List.iter print_endline (Scenario.list_lines ());
    0
  end
  else if list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-10s %s\n" id desc) experiments;
    0
  end
  else begin
    let to_run, unknown =
      match only with
      | None -> (experiments, [])
      | Some ids ->
        let wanted =
          List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' ids))
        in
        let known = List.filter (fun (eid, _, _) -> List.mem eid wanted) experiments in
        let unknown =
          List.filter (fun w -> not (List.exists (fun (eid, _, _) -> eid = w) experiments)) wanted
        in
        (known, unknown)
    in
    if to_run = [] || unknown <> [] then begin
      Printf.eprintf "unknown experiment id%s; use --list\n"
        (match unknown with [] -> "" | ids -> ": " ^ String.concat ", " ids);
      1
    end
    else begin
      (* Fail on an unwritable --json path now, not after the (possibly
         hour-long) experiments have already run. *)
      (match json with
      | None -> ()
      | Some path -> (
        try close_out (open_out path)
        with Sys_error msg ->
          Printf.eprintf "cannot write --json file: %s\n" msg;
          exit 1));
      Printf.printf "Substrate coupling sparsification — reproduction harness%s\n"
        (if full then " (paper-scale sizes)" else " (reduced sizes; use --full for paper scale)");
      let records =
        List.map
          (fun (id, desc, f) ->
            let s0 = Blackbox.total_solve_count () in
            let t0 = Unix.gettimeofday () in
            f ~full ();
            let wall = Unix.gettimeofday () -. t0 in
            (id, desc, wall, Blackbox.total_solve_count () - s0))
          to_run
      in
      (match json with None -> () | Some path -> write_json path ~full records);
      0
    end
  end

let () =
  let open Cmdliner in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"IDS" ~doc:"Run only the listed experiments (comma-separated ids).")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Use paper-scale problem sizes.") in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids.") in
  let list_scenarios =
    Arg.(
      value & flag
      & info [ "list-scenarios" ]
          ~doc:"List the scenario registry the scn experiment iterates, then exit.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write per-experiment wall-clock and solve counts (and parallel speedups) as JSON.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Domains for the parallel-extraction experiment (0 = auto, at least 2).")
  in
  let term = Term.(const run $ only $ full $ list_only $ list_scenarios $ json $ jobs) in
  let info = Cmd.info "bench" ~doc:"Reproduce the thesis's tables and figures." in
  exit (Cmd.eval' (Cmd.v info term))
